//! The long-running dispatch daemon: live ingestion over the streaming
//! engines, proven live-equal to replay.
//!
//! [`ServeDaemon`] wraps the sequential [`StreamEngine`] (one shard) or
//! the region-sharded parallel engine (N shards) behind an
//! [`IngestSource`] — a file being tailed, a TCP frame stream, or any
//! in-process iterator. The daemon adds exactly the operational concerns
//! a replay does not have, and *nothing decision-relevant*:
//!
//! - **Snapshots**: every window boundary is announced through
//!   [`StreamSink::window_closed`]; when one crosses the next snapshot
//!   instant (`snapshot_every` grid on the stream clock), the snapshot
//!   hook fires. Because boundaries are positions on the *stream* clock —
//!   reproduced exactly by the sharded router's window clock — the
//!   snapshot sequence is identical for any shard count and any
//!   ingestion backend.
//! - **Day rollover**: boundaries crossing a `day_length` multiple fire
//!   the day hook (metrics rollover lives in the caller's sink — see
//!   `MetricsJournal` in `rideshare-metrics`), and the sequential engine
//!   additionally compacts provably-retired drivers on the spot
//!   ([`StreamEngine::compact_now`]; sharded workers rely on the same
//!   machinery via `StreamOptions::compact_threshold`). Compaction is
//!   lossless, so rollover cannot perturb decisions.
//! - **Graceful drain**: on end-of-stream, ingest error, or the shutdown
//!   flag, in-flight windows close through the engines' normal `finish`
//!   path — the daemon's cumulative output over a fully delivered trace
//!   is therefore *byte-identical* to `replay_stream`/`replay_sharded`
//!   over the same events (the `serve_equivalence` battery pins this),
//!   and even a faulted run leaves a valid partial result.
//!
//! Hostile feeds cannot panic the daemon: every event passes the
//! [`EventGuard`] before reaching an engine, so stream-contract
//! violations surface as typed [`IngestError`]s in the
//! [`ServeOutcome`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rideshare_geo::SpeedModel;
use rideshare_types::{TimeDelta, Timestamp};

use crate::ingest::{EventGuard, IngestError, IngestSource};
use crate::shard::{replay_sharded, RegionPartitioner, ShardOptions, ShardPolicySpec};
use crate::stream::{StreamEngine, StreamEvent, StreamSink, StreamSummary};

/// Operational configuration of a [`ServeDaemon`] (everything that is
/// *not* the dispatch semantics: sharding, snapshot cadence, day length).
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Shard count and per-shard engine options (grid pruning,
    /// compaction, validator, channel bounds).
    pub shards: ShardOptions,
    /// Day length for state resets and metrics rollover. The stream clock
    /// is partitioned into `[k·L, (k+1)·L)` days; a window boundary at or
    /// past a day end closes that day.
    pub day_length: TimeDelta,
    /// Snapshot cadence on the stream clock, `None` to disable. The first
    /// window boundary at or past each due multiple fires the snapshot
    /// hook (at most one snapshot per boundary; the schedule then jumps
    /// past that boundary).
    pub snapshot_every: Option<TimeDelta>,
}

impl ServeConfig {
    /// A daemon over `shards` workers, 24-hour days, snapshots disabled.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards: ShardOptions::new(shards),
            day_length: TimeDelta::from_hours(24),
            snapshot_every: None,
        }
    }

    /// Replaces the shard/engine options wholesale.
    #[must_use]
    pub fn shard_options(mut self, options: ShardOptions) -> Self {
        self.shards = options;
        self
    }

    /// Replaces the day length.
    ///
    /// # Panics
    ///
    /// Panics if `day_length` is not strictly positive.
    #[must_use]
    pub fn day_length(mut self, day_length: TimeDelta) -> Self {
        assert!(
            day_length.as_secs() > 0,
            "day length must be strictly positive"
        );
        self.day_length = day_length;
        self
    }

    /// Enables periodic snapshots every `every` of stream time.
    ///
    /// # Panics
    ///
    /// Panics if `every` is not strictly positive.
    #[must_use]
    pub fn snapshot_every(mut self, every: TimeDelta) -> Self {
        assert!(
            every.as_secs() > 0,
            "snapshot cadence must be strictly positive"
        );
        self.snapshot_every = Some(every);
        self
    }
}

/// Why the daemon stopped ingesting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeStop {
    /// The feed ended cleanly (end-of-stream marker or transport EOF on a
    /// frame boundary) and everything drained.
    Drained,
    /// The shutdown flag was raised; everything ingested so far drained.
    Shutdown,
    /// Ingestion failed with the typed error in
    /// [`ServeOutcome::error`]; everything ingested before the fault
    /// drained.
    Error,
}

/// What one daemon run did. Present even after a fault — the counters and
/// summary describe the drained, valid partial result.
#[derive(Clone, Copy, Debug)]
pub struct ServeReport {
    /// The engines' replay summary over everything ingested.
    pub summary: StreamSummary,
    /// Events ingested and admitted (drivers, tasks, offline, ticks).
    pub events: usize,
    /// Window boundaries observed (decision groups fully decided).
    pub windows: usize,
    /// Days rolled over.
    pub days: usize,
    /// Snapshots taken.
    pub snapshots: usize,
    /// Why ingestion stopped.
    pub stop: ServeStop,
}

/// A [`ServeReport`] plus the ingest fault, if any.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The drained result (valid even when `error` is set).
    pub report: ServeReport,
    /// The typed ingestion fault that stopped the run, if any.
    pub error: Option<IngestError>,
}

impl ServeOutcome {
    /// The report, or the fault that cut the run short.
    ///
    /// # Errors
    ///
    /// Returns the [`IngestError`] when the run was stopped by one (the
    /// partial report is dropped; keep the outcome if you need both).
    pub fn into_result(self) -> Result<ServeReport, IngestError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.report),
        }
    }
}

/// A snapshot instant, handed to the snapshot hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotPoint {
    /// 0-based snapshot sequence number.
    pub seq: usize,
    /// The window boundary (stream clock) that triggered it.
    pub at: Timestamp,
}

/// A day rollover, handed to the day hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DayPoint {
    /// 0-based index of the day being closed.
    pub day: usize,
    /// The day's nominal end (a multiple of the configured day length).
    pub end: Timestamp,
}

/// The sink the daemon interposes between the engines and the caller's
/// sink: forwards everything, and turns `window_closed` boundaries into
/// snapshot/day-rollover hook firings on the deterministic stream clock.
struct ServeSink<'a, S, FS, FD> {
    inner: &'a mut S,
    on_snapshot: &'a mut FS,
    on_day: &'a mut FD,
    day_length: TimeDelta,
    next_day_end: Timestamp,
    snapshot_every: Option<TimeDelta>,
    next_snapshot: Timestamp,
    windows: usize,
    days: usize,
    snapshots: usize,
}

impl<'a, S, FS, FD> ServeSink<'a, S, FS, FD>
where
    S: StreamSink,
    FS: FnMut(SnapshotPoint, &mut S),
    FD: FnMut(DayPoint, &mut S),
{
    fn new(
        inner: &'a mut S,
        on_snapshot: &'a mut FS,
        on_day: &'a mut FD,
        config: &ServeConfig,
    ) -> Self {
        Self {
            inner,
            on_snapshot,
            on_day,
            day_length: config.day_length,
            next_day_end: Timestamp::EPOCH + config.day_length,
            snapshot_every: config.snapshot_every,
            next_snapshot: Timestamp::EPOCH
                + config.snapshot_every.unwrap_or(TimeDelta::from_secs(0)),
            windows: 0,
            days: 0,
            snapshots: 0,
        }
    }
}

impl<S, FS, FD> StreamSink for ServeSink<'_, S, FS, FD>
where
    S: StreamSink,
    FS: FnMut(SnapshotPoint, &mut S),
    FD: FnMut(DayPoint, &mut S),
{
    fn driver_online(&mut self, driver: &rideshare_core::Driver) {
        self.inner.driver_online(driver);
    }

    fn dispatched(&mut self, task: &rideshare_core::Task, event: &crate::DispatchEvent) {
        self.inner.dispatched(task, event);
    }

    fn rejected(&mut self, task: &rideshare_core::Task, decision_time: Timestamp) {
        self.inner.rejected(task, decision_time);
    }

    fn window_closed(&mut self, end: Timestamp) {
        self.inner.window_closed(end);
        self.windows += 1;
        // Close every day whose end this boundary reaches or passes (a
        // quiet stream can cross several days in one window). Days close
        // in order, each exactly once.
        while end >= self.next_day_end {
            (self.on_day)(
                DayPoint {
                    day: self.days,
                    end: self.next_day_end,
                },
                self.inner,
            );
            self.days += 1;
            self.next_day_end += self.day_length;
        }
        // At most one snapshot per boundary; the schedule then jumps to
        // the next cadence multiple strictly past this boundary, so a
        // long-idle stream takes one catch-up snapshot, not a burst.
        if let Some(every) = self.snapshot_every {
            if end >= self.next_snapshot {
                (self.on_snapshot)(
                    SnapshotPoint {
                        seq: self.snapshots,
                        at: end,
                    },
                    self.inner,
                );
                self.snapshots += 1;
                let k = end.as_secs().div_euclid(every.as_secs()) + 1;
                self.next_snapshot = Timestamp::from_secs(k * every.as_secs());
            }
        }
    }
}

/// How the ingest loop ended (internal).
enum LoopEnd {
    Clean,
    Shutdown,
    Fault(IngestError),
}

/// Pulls events from `source` through `guard`, as an iterator the sharded
/// router can consume on the caller's thread. Stops (returns `None`) on
/// end-of-stream, fault, or shutdown; the disposition lands in `end`.
struct GuardedEvents<'a> {
    source: &'a mut dyn IngestSource,
    guard: EventGuard,
    shutdown: Option<&'a AtomicBool>,
    events: &'a mut usize,
    end: &'a mut LoopEnd,
}

impl Iterator for GuardedEvents<'_> {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        if self.shutdown.is_some_and(|f| f.load(Ordering::Relaxed)) {
            *self.end = LoopEnd::Shutdown;
            return None;
        }
        match self.source.next_event() {
            Ok(Some(event)) => {
                if let Err(e) = self.guard.admit(&event) {
                    *self.end = LoopEnd::Fault(e);
                    return None;
                }
                *self.events += 1;
                Some(event)
            }
            Ok(None) => {
                *self.end = LoopEnd::Clean;
                None
            }
            Err(e) => {
                *self.end = LoopEnd::Fault(e);
                None
            }
        }
    }
}

/// The long-running dispatch daemon. Construction fixes the dispatch
/// semantics (speed model, policy spec, partitioner); [`run`] drains one
/// ingest source through it.
///
/// [`run`]: ServeDaemon::run
pub struct ServeDaemon<'p> {
    speed: SpeedModel,
    spec: ShardPolicySpec,
    partitioner: Option<&'p dyn RegionPartitioner>,
    config: ServeConfig,
    shutdown: Option<Arc<AtomicBool>>,
}

impl<'p> ServeDaemon<'p> {
    /// Creates a daemon. With more than one shard a partitioner is
    /// required — add it with [`with_partitioner`](Self::with_partitioner).
    #[must_use]
    pub fn new(speed: SpeedModel, spec: ShardPolicySpec, config: ServeConfig) -> Self {
        Self {
            speed,
            spec,
            partitioner: None,
            config,
            shutdown: None,
        }
    }

    /// Installs the region partitioner for sharded serving.
    #[must_use]
    pub fn with_partitioner(mut self, partitioner: &'p dyn RegionPartitioner) -> Self {
        self.partitioner = Some(partitioner);
        self
    }

    /// Installs a cooperative shutdown flag: raise it from any thread (a
    /// signal handler, a control socket) and the daemon stops ingesting
    /// at the next event boundary, drains, and reports
    /// [`ServeStop::Shutdown`]. Share the same flag with the source (see
    /// [`crate::FileSource::with_shutdown`] /
    /// [`crate::TcpSource::with_shutdown`]) so blocked reads wake up too.
    #[must_use]
    pub fn with_shutdown(mut self, flag: Arc<AtomicBool>) -> Self {
        self.shutdown = Some(flag);
        self
    }

    /// Drains `source` through the engines into `sink`, firing
    /// `on_snapshot` and `on_day` at their deterministic stream-clock
    /// instants. Never panics on hostile feed input; see [`ServeOutcome`].
    ///
    /// # Panics
    ///
    /// Panics only on daemon misconfiguration (more than one shard
    /// without a partitioner) or internal engine failure — not on feed
    /// content.
    pub fn run<S, FS, FD>(
        &self,
        source: &mut dyn IngestSource,
        sink: &mut S,
        mut on_snapshot: FS,
        mut on_day: FD,
    ) -> ServeOutcome
    where
        S: StreamSink,
        FS: FnMut(SnapshotPoint, &mut S),
        FD: FnMut(DayPoint, &mut S),
    {
        let mut events = 0usize;
        let mut end = LoopEnd::Clean;
        let mut serve_sink = ServeSink::new(sink, &mut on_snapshot, &mut on_day, &self.config);

        let summary = if self.config.shards.shards == 1 {
            self.run_sequential(source, &mut serve_sink, &mut events, &mut end)
        } else {
            let partitioner = self
                .partitioner
                // audit:allow(unwrap-panic): construction contract, not feed input — `run`'s Panics section documents it, and no hostile byte stream can reach this branch (the partitioner is fixed before ingestion starts).
                .expect("serving more than one shard requires a partitioner");
            let guarded = GuardedEvents {
                source,
                guard: EventGuard::new(),
                shutdown: self.shutdown.as_deref(),
                events: &mut events,
                end: &mut end,
            };
            replay_sharded(
                self.speed,
                guarded,
                self.spec,
                partitioner,
                self.config.shards,
                &mut serve_sink,
            )
        };

        let (windows, days, snapshots) =
            (serve_sink.windows, serve_sink.days, serve_sink.snapshots);
        let (stop, error) = match end {
            LoopEnd::Clean => (ServeStop::Drained, None),
            LoopEnd::Shutdown => (ServeStop::Shutdown, None),
            LoopEnd::Fault(e) => (ServeStop::Error, Some(e)),
        };
        ServeOutcome {
            report: ServeReport {
                summary,
                events,
                windows,
                days,
                snapshots,
                stop,
            },
            error,
        }
    }

    /// The one-shard path: a sequential [`StreamEngine`] driven directly,
    /// with proactive day-boundary compaction.
    fn run_sequential<S, FS, FD>(
        &self,
        source: &mut dyn IngestSource,
        sink: &mut ServeSink<'_, S, FS, FD>,
        events: &mut usize,
        end: &mut LoopEnd,
    ) -> StreamSummary
    where
        S: StreamSink,
        FS: FnMut(SnapshotPoint, &mut S),
        FD: FnMut(DayPoint, &mut S),
    {
        let mut holder = self.spec.holder();
        let mut engine = StreamEngine::new(self.speed, self.config.shards.stream);
        let mut guard = EventGuard::new();
        let day = self.config.day_length.as_secs();
        let mut next_compact = Timestamp::EPOCH + self.config.day_length;
        loop {
            if self
                .shutdown
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
            {
                *end = LoopEnd::Shutdown;
                break;
            }
            match source.next_event() {
                Ok(Some(event)) => {
                    if let Err(e) = guard.admit(&event) {
                        *end = LoopEnd::Fault(e);
                        break;
                    }
                    // Day-boundary state reset: compact provably-retired
                    // drivers the first time the stream clock crosses a
                    // day end (lossless — cannot change any decision).
                    if let Some(t) = event.timestamp() {
                        if t >= next_compact {
                            engine.compact_now(&holder.as_policy());
                            let k = t.as_secs().div_euclid(day) + 1;
                            next_compact = Timestamp::from_secs(k * day);
                        }
                    }
                    *events += 1;
                    let mut policy = holder.as_policy();
                    engine.push(event, &mut policy, sink);
                }
                Ok(None) => {
                    *end = LoopEnd::Clean;
                    break;
                }
                Err(e) => {
                    *end = LoopEnd::Fault(e);
                    break;
                }
            }
        }
        let mut policy = holder.as_policy();
        engine.finish(&mut policy, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IterSource;
    use crate::stream::{replay_stream, CollectingSink, StreamOptions, StreamPolicy};
    use crate::MaxMargin;
    use rideshare_core::{Driver, Task};
    use rideshare_geo::GeoPoint;
    use rideshare_trace::DriverModel;
    use rideshare_types::{DriverId, Money, TaskId};

    fn driver(id: u32, shift_end: i64) -> StreamEvent {
        StreamEvent::DriverOnline(Driver {
            id: DriverId::new(id),
            source: GeoPoint::new(41.15, -8.61),
            destination: GeoPoint::new(41.15, -8.61),
            shift_start: Timestamp::from_secs(0),
            shift_end: Timestamp::from_secs(shift_end),
            model: DriverModel::HomeWorkHome,
        })
    }

    fn task(id: u32, publish: i64) -> StreamEvent {
        StreamEvent::TaskPublished(Task {
            id: TaskId::new(id),
            publish_time: Timestamp::from_secs(publish),
            origin: GeoPoint::new(41.15, -8.61),
            destination: GeoPoint::new(41.16, -8.60),
            pickup_deadline: Timestamp::from_secs(publish + 600),
            completion_deadline: Timestamp::from_secs(publish + 3600),
            duration: TimeDelta::from_secs(400),
            price: Money::new(7.0),
            valuation: Money::new(8.0),
            service_cost: Money::new(2.0),
        })
    }

    /// A three-day synthetic stream: one driver, one task per day.
    fn three_day_events() -> Vec<StreamEvent> {
        let day = 86_400;
        vec![
            driver(0, 3 * day),
            task(0, 9 * 3600),
            task(1, day + 9 * 3600),
            task(2, 2 * day + 9 * 3600),
            StreamEvent::EpochTick(Timestamp::from_secs(3 * day)),
        ]
    }

    #[test]
    fn daemon_equals_replay_and_fires_hooks() {
        let events = three_day_events();

        let mut expected = CollectingSink::new();
        replay_stream(
            SpeedModel::default(),
            events.iter().copied(),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut expected,
        );

        let daemon = ServeDaemon::new(
            SpeedModel::default(),
            ShardPolicySpec::MaxMargin,
            ServeConfig::new(1).snapshot_every(TimeDelta::from_hours(1)),
        );
        let mut sink = CollectingSink::new();
        let mut snapshots = Vec::new();
        let mut days = Vec::new();
        let outcome = daemon.run(
            &mut IterSource::new(events.into_iter()),
            &mut sink,
            |p, _| snapshots.push(p),
            |d, _| days.push(d),
        );

        assert!(outcome.error.is_none());
        let report = outcome.into_result().unwrap();
        assert_eq!(report.stop, ServeStop::Drained);
        assert_eq!(report.summary.tasks, 3);
        assert_eq!(report.windows, 3, "one publish group per day");
        // Day 0 and day 1 close when the next day's task arrives; day 2
        // closes at the final tick boundary.
        assert_eq!(report.days, 2);
        assert_eq!(days[0].day, 0);
        assert_eq!(days[0].end, Timestamp::from_secs(86_400));
        // One snapshot per boundary (cadence 1h << boundary gaps).
        assert_eq!(report.snapshots, 3);
        assert_eq!(snapshots[0].seq, 0);

        let (a, b) = (sink.into_result(), expected.into_result());
        assert_eq!(a.dispatch, b.dispatch);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn hostile_feed_yields_typed_error_and_partial_result() {
        // Second task goes backwards in time.
        let events = vec![driver(0, 86_400), task(0, 5000), task(1, 100)];
        let daemon = ServeDaemon::new(
            SpeedModel::default(),
            ShardPolicySpec::MaxMargin,
            ServeConfig::new(1),
        );
        let mut sink = CollectingSink::new();
        let outcome = daemon.run(
            &mut IterSource::new(events.into_iter()),
            &mut sink,
            |_, _| {},
            |_, _| {},
        );
        assert_eq!(outcome.report.stop, ServeStop::Error);
        assert!(matches!(
            outcome.error,
            Some(IngestError::NonMonotonic { .. })
        ));
        // The admitted prefix drained: task 0 was decided.
        assert_eq!(outcome.report.summary.tasks, 1);
        assert_eq!(
            outcome.report.summary.served + outcome.report.summary.rejected,
            1
        );
    }

    #[test]
    fn shutdown_flag_stops_and_drains() {
        let flag = Arc::new(AtomicBool::new(false));
        // Flip the flag after the second event by interposing an iterator.
        let flipper = flag.clone();
        let events = three_day_events();
        let stream = events.into_iter().enumerate().map(move |(i, e)| {
            if i == 2 {
                flipper.store(true, Ordering::Relaxed);
            }
            e
        });
        let daemon = ServeDaemon::new(
            SpeedModel::default(),
            ShardPolicySpec::MaxMargin,
            ServeConfig::new(1),
        )
        .with_shutdown(flag);
        let mut sink = CollectingSink::new();
        let outcome = daemon.run(
            &mut IterSource::new(stream),
            &mut sink,
            |_, _| {},
            |_, _| {},
        );
        let report = outcome.into_result().unwrap();
        assert_eq!(report.stop, ServeStop::Shutdown);
        // The flag is raised while event 2 is being pulled, so events 0–2
        // (driver + two tasks) are ingested; the daemon notices at the
        // next boundary and the held group drains on shutdown.
        assert_eq!(report.events, 3);
        assert_eq!(report.summary.tasks, 2);
        assert_eq!(report.summary.served + report.summary.rejected, 2);
    }
}
