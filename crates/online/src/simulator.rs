//! The event-driven online replay (the `while task m arrives` loop of
//! Algorithms 3–4).

use rideshare_core::{Assignment, Driver, Market, Objective, Task};
use rideshare_geo::SpeedModel;
use rideshare_types::{DriverId, Money, TaskId, Timestamp};

use crate::candidates::{CandidateEngine, DriverStates};
use crate::policy::{Candidate, DispatchPolicy};

/// Options controlling a simulation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimulationOptions {
    /// Process tasks in descending price order instead of publish order —
    /// the *offline* variant of maxMargin from §V-B ("it will be more
    /// efficient to deal with the tasks which have higher values firstly"),
    /// only meaningful when the full day is known in advance.
    pub value_sorted: bool,
    /// Use a spatial grid index for candidate generation instead of a
    /// linear scan over all drivers (identical results, different cost —
    /// kept switchable for the ablation bench).
    pub use_grid: bool,
}

/// One dispatched task's operational record.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DispatchEvent {
    /// The served task.
    pub task: TaskId,
    /// The dispatched driver.
    pub driver: DriverId,
    /// When the driver reached the pickup.
    pub arrival: Timestamp,
    /// When the dispatch decision was made: the task's publish time under
    /// instant dispatch, the batch decision epoch under
    /// [`crate::BatchEngine`]. The driver's departure never precedes this
    /// instant — the causality law [`crate::validate_online_result`]
    /// enforces.
    pub decision_time: Timestamp,
    /// Rider wait from order publication to pickup arrival.
    pub wait: rideshare_types::TimeDelta,
    /// Empty kilometres driven to reach the pickup (deadhead).
    pub deadhead_km: f64,
    /// Candidate-set size the policy chose from.
    pub candidates: usize,
    /// The dispatched candidate's Eq. 14 marginal value `δₙ,ₘ`. Margins
    /// telescope: summing them over a whole run reproduces the run's total
    /// profit (Eq. 4) without a market in hand, which is how the streaming
    /// accumulators (`rideshare-metrics`'s `StreamMetrics`) report profit
    /// off an unbounded stream.
    pub margin: f64,
}

/// Outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct SimulationResult {
    /// The resulting task lists (validate with
    /// [`crate::validate_online`], *not* the offline
    /// [`Assignment::validate`] — early finishes legitimately create chains
    /// the offline deadline-based task map does not contain).
    pub assignment: Assignment,
    /// Tasks dispatched to a driver.
    pub served: usize,
    /// Tasks rejected (empty candidate set or policy refusal).
    pub rejected: usize,
    /// For each task, the driver it was dispatched to (by task index).
    pub dispatch: Vec<Option<DriverId>>,
    /// Operational record of every dispatched task, in dispatch order.
    pub events: Vec<DispatchEvent>,
}

impl SimulationResult {
    /// Fraction of tasks served — Fig. 7's metric.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        let total = self.served + self.rejected;
        if total == 0 {
            return 0.0;
        }
        self.served as f64 / total as f64
    }

    /// Drivers' total profit of the dispatched routes (Eq. 4).
    #[must_use]
    pub fn total_profit(&self, market: &Market) -> Money {
        self.assignment.objective_value(market, Objective::Profit)
    }

    /// Mean rider wait (publish → pickup arrival) over served tasks, in
    /// minutes; `None` when nothing was served.
    #[must_use]
    pub fn mean_wait_mins(&self) -> Option<f64> {
        if self.events.is_empty() {
            return None;
        }
        Some(
            self.events
                .iter()
                .map(|e| e.wait.as_mins_f64())
                .sum::<f64>()
                / self.events.len() as f64,
        )
    }

    /// Total empty (deadhead) kilometres driven to reach pickups.
    #[must_use]
    pub fn total_deadhead_km(&self) -> f64 {
        self.events.iter().map(|e| e.deadhead_km).sum()
    }

    /// Mean candidate-set size the policy chose from — a direct measure of
    /// market thickness (singleton sets mean the criterion is irrelevant).
    #[must_use]
    pub fn mean_candidates(&self) -> Option<f64> {
        if self.events.is_empty() {
            return None;
        }
        Some(
            self.events.iter().map(|e| e.candidates as f64).sum::<f64>() / self.events.len() as f64,
        )
    }
}

/// The online market simulator.
///
/// Holds a reference to the market; each [`Simulator::run`] replays the
/// order stream from scratch, so one simulator can evaluate many policies
/// on identical conditions.
#[derive(Clone, Debug)]
pub struct Simulator<'m> {
    market: &'m Market,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator over `market`.
    #[must_use]
    pub fn new(market: &'m Market) -> Self {
        Self { market }
    }

    /// Replays every task through `policy` under `options`.
    #[must_use]
    pub fn run(
        &self,
        policy: &mut dyn DispatchPolicy,
        options: SimulationOptions,
    ) -> SimulationResult {
        let market = self.market;
        let n = market.num_drivers();
        let m = market.num_tasks();
        let speed = market.speed();

        // Shared candidate generator (Eq. 14 + feasibility + optional grid).
        let (mut engine, mut states) = CandidateEngine::for_market(market, options.use_grid);

        // Arrival order: publish time, or descending price for the offline
        // value-sorted variant.
        let mut order: Vec<usize> = (0..m).collect();
        if options.value_sorted {
            order.sort_by(|&a, &b| {
                let ta = &market.tasks()[a];
                let tb = &market.tasks()[b];
                tb.price
                    .partial_cmp(&ta.price)
                    .expect("finite price")
                    .then(a.cmp(&b))
            });
        } else {
            order.sort_by_key(|&t| (market.tasks()[t].publish_time, t));
        }

        let mut assignment = Assignment::empty(n);
        let mut dispatch: Vec<Option<DriverId>> = vec![None; m];
        let mut events: Vec<DispatchEvent> = Vec::new();
        let mut served = 0usize;
        let mut rejected = 0usize;
        let mut scratch: Vec<Candidate> = Vec::new();

        for &ti in &order {
            let task = &market.tasks()[ti];
            // Instant dispatch: the decision is made the moment the order
            // is published.
            match dispatch_instant(
                &mut engine,
                market.drivers(),
                &mut states,
                speed,
                task,
                task.publish_time,
                policy,
                &mut scratch,
            ) {
                None => rejected += 1,
                Some(mut event) => {
                    // Replay identity is positional: events name tasks by
                    // market index (hand-built markets may carry ids that
                    // disagree with their position).
                    event.task = TaskId::new(ti as u32);
                    assignment.push_task(event.driver, event.task);
                    dispatch[ti] = Some(event.driver);
                    events.push(event);
                    served += 1;
                }
            }
        }

        SimulationResult {
            assignment,
            served,
            rejected,
            dispatch,
            events,
        }
    }
}

/// One instant-dispatch decision, shared by [`Simulator::run`] and the
/// streaming engine's instant mode: generate the candidate set for `task`
/// at `decision_time` into the caller's reusable `scratch` arena, let
/// `policy` choose, commit the winner, and return the resulting event
/// (`None` = rejected). `record_id` is the task id the event reports — the
/// market index for the materialized simulator, the task's own id for
/// streams.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_instant(
    engine: &mut CandidateEngine,
    drivers: &[Driver],
    states: &mut DriverStates,
    speed: SpeedModel,
    task: &Task,
    decision_time: Timestamp,
    policy: &mut dyn DispatchPolicy,
    scratch: &mut Vec<Candidate>,
) -> Option<DispatchEvent> {
    engine.candidates_into(drivers, states, task, decision_time, scratch);
    if scratch.is_empty() {
        return None;
    }
    let k = policy.choose(scratch)?;
    let cand = scratch[k];
    let d = cand.driver;
    let old_loc = states.location(d);
    engine.commit(states, d, task, cand.arrival);
    Some(DispatchEvent {
        task: task.id,
        driver: DriverId::new(d as u32),
        arrival: cand.arrival,
        decision_time,
        wait: cand.arrival - task.publish_time,
        deadhead_km: speed.driven_km(old_loc, task.origin),
        candidates: scratch.len(),
        margin: cand.marginal_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MaxMargin, NearestDriver, RandomDispatch};
    use crate::validate_online;
    use rideshare_core::MarketBuildOptions;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn all_tasks_accounted_for() {
        let m = market(41, 120, 15);
        let sim = Simulator::new(&m);
        for policy in [
            &mut NearestDriver::new() as &mut dyn DispatchPolicy,
            &mut MaxMargin::new(),
            &mut RandomDispatch::with_seed(1),
        ] {
            let r = sim.run(policy, SimulationOptions::default());
            assert_eq!(r.served + r.rejected, m.num_tasks());
            assert_eq!(r.served, r.assignment.served_count());
            assert_eq!(r.dispatch.iter().filter(|d| d.is_some()).count(), r.served);
            validate_online(&m, &r.assignment).unwrap();
        }
    }

    #[test]
    fn grid_and_linear_scan_agree() {
        let m = market(42, 150, 20);
        let sim = Simulator::new(&m);
        let linear = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        let grid = sim.run(
            &mut MaxMargin::new(),
            SimulationOptions {
                use_grid: true,
                ..Default::default()
            },
        );
        assert_eq!(linear.dispatch, grid.dispatch);
        assert_eq!(linear.served, grid.served);
    }

    #[test]
    fn deterministic_replay() {
        let m = market(43, 100, 10);
        let sim = Simulator::new(&m);
        let a = sim.run(
            &mut NearestDriver::with_seed(5),
            SimulationOptions::default(),
        );
        let b = sim.run(
            &mut NearestDriver::with_seed(5),
            SimulationOptions::default(),
        );
        assert_eq!(a.dispatch, b.dispatch);
    }

    #[test]
    fn served_profit_non_negative_margins() {
        // maxMargin never dispatches a negative-margin candidate when a
        // positive one exists — total profit should be positive on a
        // healthy market.
        let m = market(44, 150, 60);
        let sim = Simulator::new(&m);
        let r = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        assert!(r.total_profit(&m).is_strictly_positive());
        // Hitchhiking shifts are short commuter windows, so coverage of a
        // full day is sparse; with 60 drivers a healthy slice gets served.
        assert!(r.service_rate() > 0.05, "rate {}", r.service_rate());
    }

    #[test]
    fn value_sorted_processes_high_prices_first() {
        let m = market(45, 100, 3);
        let sim = Simulator::new(&m);
        let online = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        let sorted = sim.run(
            &mut MaxMargin::new(),
            SimulationOptions {
                value_sorted: true,
                ..Default::default()
            },
        );
        // With scarce supply, prioritising valuable tasks should not lose
        // revenue relative to arrival order.
        let rev_online = online.assignment.total_revenue(&m);
        let rev_sorted = sorted.assignment.total_revenue(&m);
        assert!(
            rev_sorted.as_f64() >= rev_online.as_f64() * 0.9,
            "sorted {rev_sorted} online {rev_online}"
        );
    }

    #[test]
    fn empty_market_zero_everything() {
        let m = market(46, 0, 5);
        let sim = Simulator::new(&m);
        let r = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        assert_eq!(r.served, 0);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.service_rate(), 0.0);
    }

    #[test]
    fn no_drivers_rejects_everything() {
        let m = market(47, 50, 0);
        let sim = Simulator::new(&m);
        let r = sim.run(&mut NearestDriver::new(), SimulationOptions::default());
        assert_eq!(r.served, 0);
        assert_eq!(r.rejected, 50);
    }

    #[test]
    fn events_are_consistent_with_dispatch() {
        let m = market(49, 150, 30);
        let sim = Simulator::new(&m);
        let r = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        assert_eq!(r.events.len(), r.served);
        for e in &r.events {
            assert_eq!(r.dispatch[e.task.index()], Some(e.driver));
            let task = &m.tasks()[e.task.index()];
            assert!(e.arrival <= task.pickup_deadline, "late arrival logged");
            assert_eq!(
                e.decision_time, task.publish_time,
                "instant dispatch decides at publish"
            );
            assert!(e.wait.is_non_negative(), "negative wait");
            assert!(e.deadhead_km >= 0.0);
            assert!(e.candidates >= 1);
        }
        if r.served > 0 {
            assert!(r.mean_wait_mins().unwrap() >= 0.0);
            assert!(r.total_deadhead_km() >= 0.0);
            assert!(r.mean_candidates().unwrap() >= 1.0);
        }
    }

    #[test]
    fn empty_run_has_no_event_stats() {
        let m = market(50, 0, 3);
        let r = Simulator::new(&m).run(&mut MaxMargin::new(), SimulationOptions::default());
        assert!(r.mean_wait_mins().is_none());
        assert!(r.mean_candidates().is_none());
        assert_eq!(r.total_deadhead_km(), 0.0);
    }

    #[test]
    fn more_drivers_serve_more() {
        let small = market(48, 200, 5);
        let big = market(48, 200, 60);
        let r_small =
            Simulator::new(&small).run(&mut MaxMargin::new(), SimulationOptions::default());
        let r_big = Simulator::new(&big).run(&mut MaxMargin::new(), SimulationOptions::default());
        assert!(
            r_big.served > r_small.served,
            "big {} vs small {}",
            r_big.served,
            r_small.served
        );
    }
}
