//! Dispatch policies: how step (b) of Algorithms 3–4 picks a candidate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rideshare_types::Timestamp;

/// The splitmix64 finalizer: a cheap, high-quality bit mixer used to derive
/// decision-local pseudo-random choices from candidate-set data alone (and
/// by the sharding layer to spread grid cells across shards).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One feasible candidate driver for an arriving task, as assembled by the
/// simulator in step (a) of Algorithms 3–4.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Candidate {
    /// Driver index.
    pub driver: usize,
    /// Earliest arrival time at the task's pickup point.
    pub arrival: Timestamp,
    /// The marginal value `δₙ,ₘ` of Eq. 14: the profit added to this
    /// driver's route if she takes the task next.
    pub marginal_value: f64,
}

/// A dispatch rule choosing among the candidate drivers for a task.
///
/// Implementors are deterministic, making whole simulations reproducible.
/// Policies whose choice is a pure function of the candidate set (and a
/// seed) — [`MaxMargin`], [`NearestDriver`], [`WeightedScore`] — are
/// additionally *shard-stable*: their decisions do not depend on the order
/// in which unrelated decisions interleave, which is what lets the
/// region-sharded streaming engine reproduce a sequential replay
/// byte-for-byte. [`RandomDispatch`] consumes a shared RNG stream across
/// decisions and is therefore **not** shard-stable.
pub trait DispatchPolicy {
    /// Short label used in experiment output (e.g. `"Nearest"`).
    fn name(&self) -> &'static str;

    /// Picks the index *within `candidates`* of the driver to dispatch, or
    /// `None` to reject the task. `candidates` is non-empty.
    fn choose(&mut self, candidates: &[Candidate]) -> Option<usize>;
}

/// Algorithm 3 — *Nearest Driver*: dispatch the candidate "who will arrive
/// fastest to `s̄ₘ`, if multiple, choose a random one".
///
/// The "random" tie-break is **decision-local**: the pick among tied
/// candidates is a seeded hash of the candidate set itself (arrivals,
/// marginal values, set size) rather than a draw from a shared RNG stream.
/// Identical candidate sets therefore tie-break identically no matter how
/// many unrelated decisions happened before — the property that makes the
/// policy shard-stable (a region-sharded replay interleaves decisions
/// differently than a sequential one, but every individual decision sees
/// the same candidate set, so results stay byte-identical). The hash only
/// uses relabeling-invariant data (never driver indices), so a shard's
/// locally renumbered driver set picks the same candidate *position* as the
/// global one.
#[derive(Clone, Copy, Debug)]
pub struct NearestDriver {
    seed: u64,
}

impl NearestDriver {
    /// Creates the policy with the default tie-break seed.
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// Creates the policy with an explicit tie-break seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for NearestDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl DispatchPolicy for NearestDriver {
    fn name(&self) -> &'static str {
        "Nearest"
    }

    fn choose(&mut self, candidates: &[Candidate]) -> Option<usize> {
        let best = candidates.iter().map(|c| c.arrival).min()?;
        let tied: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.arrival == best)
            .map(|(i, _)| i)
            .collect();
        if tied.len() == 1 {
            return Some(tied[0]);
        }
        // Decision-local pseudo-random pick: fold the candidate set's
        // relabeling-invariant data through splitmix64.
        let mut h = splitmix64(self.seed ^ 0xA076_1D64_78BD_642F);
        h = splitmix64(h ^ best.as_secs() as u64);
        h = splitmix64(h ^ candidates.len() as u64);
        for &i in &tied {
            h = splitmix64(h ^ candidates[i].marginal_value.to_bits());
        }
        Some(tied[(h % tied.len() as u64) as usize])
    }
}

/// Algorithm 4 — *Maximum Marginal Value*: dispatch
/// `n* = argmax δₙ,ₘ` (Eq. 14), i.e. the driver whose route profit grows
/// the most by appending the task.
#[derive(Clone, Debug, Default)]
pub struct MaxMargin;

impl MaxMargin {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl DispatchPolicy for MaxMargin {
    fn name(&self) -> &'static str {
        "maxMargin"
    }

    fn choose(&mut self, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.marginal_value
                    .partial_cmp(&b.marginal_value)
                    .expect("finite marginal value")
                    // Deterministic tie-break: lower driver index wins.
                    .then(b.driver.cmp(&a.driver))
            })
            .map(|(i, _)| i)
    }
}

/// A blended criterion: score each candidate by
/// `marginal_value − λ · wait_minutes` and dispatch the maximiser.
///
/// `λ = 0` reduces to [`MaxMargin`]; large `λ` approaches [`NearestDriver`]
/// (arrival time dominates). The ablation suite sweeps `λ` to show the two
/// paper heuristics are endpoints of one family.
#[derive(Clone, Debug)]
pub struct WeightedScore {
    lambda_per_min: f64,
}

impl WeightedScore {
    /// Creates the policy with trade-off weight `λ` (currency per minute of
    /// pickup wait).
    ///
    /// # Panics
    ///
    /// Panics if `lambda_per_min` is negative or non-finite.
    #[must_use]
    pub fn new(lambda_per_min: f64) -> Self {
        assert!(
            lambda_per_min.is_finite() && lambda_per_min >= 0.0,
            "lambda must be a non-negative finite weight"
        );
        Self { lambda_per_min }
    }
}

impl DispatchPolicy for WeightedScore {
    fn name(&self) -> &'static str {
        "WeightedScore"
    }

    fn choose(&mut self, candidates: &[Candidate]) -> Option<usize> {
        // Waits are scored relative to the earliest possible arrival so the
        // score is invariant to the task's absolute publish time.
        let earliest = candidates.iter().map(|c| c.arrival).min()?;
        candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let score = |c: &Candidate| {
                    c.marginal_value - self.lambda_per_min * ((c.arrival - earliest).as_mins_f64())
                };
                score(a)
                    .partial_cmp(&score(b))
                    .expect("finite score")
                    .then(b.driver.cmp(&a.driver))
            })
            .map(|(i, _)| i)
    }
}

/// A uniform-random baseline: dispatch any feasible candidate. Used by the
/// ablation benches to isolate how much the *selection criterion* (rather
/// than mere feasibility filtering) contributes.
#[derive(Debug)]
pub struct RandomDispatch {
    rng: StdRng,
}

impl RandomDispatch {
    /// Creates the policy with the given seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DispatchPolicy for RandomDispatch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn choose(&mut self, candidates: &[Candidate]) -> Option<usize> {
        Some(self.rng.gen_range(0..candidates.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(driver: usize, arrival_secs: i64, margin: f64) -> Candidate {
        Candidate {
            driver,
            arrival: Timestamp::from_secs(arrival_secs),
            marginal_value: margin,
        }
    }

    #[test]
    fn nearest_picks_earliest_arrival() {
        let mut p = NearestDriver::new();
        let c = vec![cand(0, 500, 9.0), cand(1, 300, 1.0), cand(2, 400, 5.0)];
        assert_eq!(p.choose(&c), Some(1));
    }

    #[test]
    fn nearest_breaks_ties_validly_and_decision_locally() {
        let mut p = NearestDriver::with_seed(7);
        let c = vec![cand(0, 300, 0.0), cand(1, 300, 1.0), cand(2, 900, 0.0)];
        let pick = p.choose(&c).unwrap();
        assert!(pick == 0 || pick == 1, "tie-break must pick a minimum");
        // Decision-local: the pick depends only on the candidate set, not on
        // how many decisions this policy instance made before (the property
        // sharded replay relies on).
        for _ in 0..50 {
            let _ = p.choose(&[cand(9, 5, 1.0), cand(3, 5, 2.0)]);
        }
        assert_eq!(p.choose(&c).unwrap(), pick);
        // A fresh instance with the same seed agrees; other seeds may not.
        assert_eq!(NearestDriver::with_seed(7).choose(&c).unwrap(), pick);
        let spread: std::collections::HashSet<usize> = (0..64)
            .map(|s| NearestDriver::with_seed(s).choose(&c).unwrap())
            .collect();
        assert!(spread.len() > 1, "seed never changes the tie-break");
    }

    #[test]
    fn max_margin_picks_largest_delta() {
        let mut p = MaxMargin::new();
        let c = vec![cand(0, 100, 2.0), cand(1, 900, 7.5), cand(2, 200, -1.0)];
        assert_eq!(p.choose(&c), Some(1));
    }

    #[test]
    fn max_margin_tie_break_deterministic() {
        let mut p = MaxMargin::new();
        let c = vec![cand(5, 100, 3.0), cand(2, 200, 3.0)];
        // Equal margins → lower driver index (2) wins.
        assert_eq!(p.choose(&c), Some(1));
    }

    #[test]
    fn random_dispatch_stays_in_range() {
        let mut p = RandomDispatch::with_seed(3);
        let c = vec![cand(0, 1, 0.0), cand(1, 2, 0.0)];
        for _ in 0..100 {
            assert!(p.choose(&c).unwrap() < 2);
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(NearestDriver::new().name(), "Nearest");
        assert_eq!(MaxMargin::new().name(), "maxMargin");
        assert_eq!(RandomDispatch::with_seed(0).name(), "Random");
        assert_eq!(WeightedScore::new(1.0).name(), "WeightedScore");
    }

    #[test]
    fn weighted_score_zero_lambda_is_max_margin() {
        let c = vec![cand(0, 100, 2.0), cand(1, 900, 7.5), cand(2, 200, -1.0)];
        let mut blended = WeightedScore::new(0.0);
        let mut mm = MaxMargin::new();
        assert_eq!(blended.choose(&c), mm.choose(&c));
    }

    #[test]
    fn weighted_score_large_lambda_is_nearest() {
        // With a huge wait penalty, the earliest arrival always wins.
        let c = vec![cand(0, 500, 9.0), cand(1, 300, 1.0), cand(2, 400, 5.0)];
        let mut blended = WeightedScore::new(1e9);
        assert_eq!(blended.choose(&c), Some(1));
    }

    #[test]
    fn weighted_score_trades_margin_for_wait() {
        // Candidate 0 arrives 10 min later but earns 3 more. λ = 0.2/min
        // keeps it worthwhile (penalty 2 < 3); λ = 0.5/min does not.
        let c = vec![cand(0, 600, 8.0), cand(1, 0, 5.0)];
        assert_eq!(WeightedScore::new(0.2).choose(&c), Some(0));
        assert_eq!(WeightedScore::new(0.5).choose(&c), Some(1));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn weighted_score_rejects_negative_lambda() {
        let _ = WeightedScore::new(-1.0);
    }
}
