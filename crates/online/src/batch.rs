//! Batched dispatch — a non-myopic online mode.
//!
//! The paper's concluding remarks name "solv[ing] the online problem with
//! non-heuristic algorithms" as future work. The standard practical step in
//! that direction (and what production dispatch systems actually do) is
//! **batching**: instead of dispatching each order the instant it arrives,
//! the platform holds orders for a short window `W` and solves a small
//! assignment problem over the batch. Per-order latency rises by at most
//! `W`; decision quality approaches the offline optimum as `W` grows.
//!
//! [`run_batched`] implements this mode on top of the same driver-state
//! projection as the per-task simulator: within each window it repeatedly
//! commits the *(driver, task)* pair with the maximum marginal value
//! (Eq. 14), updating the driver's projected position between picks — a
//! greedy matching on the batch graph. With `W = 0` it degenerates to
//! maxMargin — exactly so when publish times are distinct (a zero window
//! still merges same-instant ties into one joint batch), a claim the
//! facade's `batch_properties` suite tests as a property over random
//! traces. With `W = ∞` (one batch) it is an online-feasible cousin of
//! the offline greedy.
//!
//! Orders are still honoured within their own deadlines: a task is only
//! held while `t̄ₘ + W < t̄⁻ₘ` allows a feasible dispatch, and batches are
//! flushed in arrival order.

use rideshare_core::{Assignment, Market};
use rideshare_geo::GeoPoint;
use rideshare_types::{DriverId, TaskId, TimeDelta, Timestamp};

use crate::simulator::{DispatchEvent, SimulationResult};

#[derive(Clone, Copy, Debug)]
struct DriverState {
    location: GeoPoint,
    available_at: Timestamp,
}

/// Runs the batched dispatcher with window `window` over `market`'s order
/// stream.
///
/// Returns the same [`SimulationResult`] shape as the per-task simulator;
/// validate with [`crate::validate_online`].
///
/// # Examples
///
/// ```
/// use rideshare_core::{Market, MarketBuildOptions};
/// use rideshare_online::{run_batched, validate_online};
/// use rideshare_trace::{DriverModel, TraceConfig};
/// use rideshare_types::TimeDelta;
///
/// let trace = TraceConfig::porto()
///     .with_seed(6)
///     .with_task_count(80)
///     .with_driver_count(10, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let result = run_batched(&market, TimeDelta::from_mins(2));
/// validate_online(&market, &result.assignment).unwrap();
/// ```
#[must_use]
pub fn run_batched(market: &Market, window: TimeDelta) -> SimulationResult {
    assert!(
        window.is_non_negative(),
        "batch window must be non-negative"
    );
    let n = market.num_drivers();
    let m = market.num_tasks();
    let speed = market.speed();

    let mut states: Vec<DriverState> = market
        .drivers()
        .iter()
        .map(|d| DriverState {
            location: d.source,
            available_at: d.shift_start,
        })
        .collect();

    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&t| (market.tasks()[t].publish_time, t));

    let mut assignment = Assignment::empty(n);
    let mut dispatch: Vec<Option<DriverId>> = vec![None; m];
    let mut events: Vec<DispatchEvent> = Vec::new();
    let mut served = 0usize;
    let mut rejected = 0usize;

    // Process the stream as consecutive windows of publish time.
    let mut i = 0usize;
    while i < order.len() {
        let window_start = market.tasks()[order[i]].publish_time;
        let window_end = window_start + window;
        let mut batch: Vec<usize> = Vec::new();
        while i < order.len() && market.tasks()[order[i]].publish_time <= window_end {
            batch.push(order[i]);
            i += 1;
        }
        // The platform decides at the end of the window; every task in the
        // batch is already published by then.
        let decision_time = window_end;

        // Greedy matching on the batch: repeatedly take the best
        // (driver, task) marginal value, update, repeat.
        let mut remaining = batch;
        loop {
            let mut best: Option<(f64, usize, usize, Timestamp)> = None;
            for &t in &remaining {
                let task = &market.tasks()[t];
                for (d, st) in states.iter().enumerate() {
                    let driver = &market.drivers()[d];
                    let depart = st
                        .available_at
                        .max(task.publish_time.min(decision_time))
                        .max(driver.shift_start)
                        // The batch decision itself happens at window end,
                        // but a driver may have been rolling since earlier;
                        // the dispatch message arrives at decision time, so
                        // she departs no earlier than max(free, publish).
                        .max(task.publish_time);
                    let arrival = depart + speed.travel_time(st.location, task.origin);
                    if arrival > task.pickup_deadline {
                        continue;
                    }
                    let back = speed.travel_time(task.destination, driver.destination);
                    if task.completion_deadline + back > driver.shift_end {
                        continue;
                    }
                    let delta = task.price
                        - speed.travel_cost(task.destination, driver.destination)
                        - task.service_cost
                        - speed.travel_cost(st.location, task.origin)
                        + speed.travel_cost(st.location, driver.destination);
                    let better = match best {
                        None => true,
                        Some((bv, _, bt, _)) => {
                            delta.as_f64() > bv + 1e-12
                                || ((delta.as_f64() - bv).abs() <= 1e-12 && t < bt)
                        }
                    };
                    if better {
                        best = Some((delta.as_f64(), d, t, arrival));
                    }
                }
            }
            let Some((_, d, t, arrival)) = best else {
                break;
            };
            let task = &market.tasks()[t];
            let old_loc = states[d].location;
            states[d] = DriverState {
                location: task.destination,
                available_at: arrival + task.duration,
            };
            assignment.push_task(DriverId::new(d as u32), TaskId::new(t as u32));
            dispatch[t] = Some(DriverId::new(d as u32));
            events.push(DispatchEvent {
                task: TaskId::new(t as u32),
                driver: DriverId::new(d as u32),
                arrival,
                wait: arrival - task.publish_time,
                deadhead_km: speed.driven_km(old_loc, task.origin),
                candidates: remaining.len(),
            });
            served += 1;
            remaining.retain(|&x| x != t);
            if remaining.is_empty() {
                break;
            }
        }
        rejected += remaining.len();
    }

    SimulationResult {
        assignment,
        served,
        rejected,
        dispatch,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MaxMargin;
    use crate::simulator::{SimulationOptions, Simulator};
    use crate::validate_online;
    use rideshare_core::{MarketBuildOptions, Objective};
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn batched_results_are_feasible() {
        let m = market(61, 120, 20);
        for mins in [0i64, 1, 5, 30] {
            let r = run_batched(&m, TimeDelta::from_mins(mins));
            validate_online(&m, &r.assignment).unwrap();
            assert_eq!(r.served + r.rejected, m.num_tasks());
            assert_eq!(r.served, r.assignment.served_count());
        }
    }

    #[test]
    fn batching_does_not_collapse_profit() {
        // A short batching window should perform comparably to (typically
        // better than) instant maxMargin dispatch.
        let m = market(62, 200, 30);
        let sim = Simulator::new(&m);
        let instant = sim
            .run(&mut MaxMargin::new(), SimulationOptions::default())
            .total_profit(&m)
            .as_f64();
        let batched = run_batched(&m, TimeDelta::from_mins(3))
            .total_profit(&m)
            .as_f64();
        assert!(
            batched >= instant * 0.8,
            "batched {batched} collapsed vs instant {instant}"
        );
    }

    #[test]
    fn zero_window_close_to_max_margin() {
        // W = 0 batches only same-publish-second ties; totals should land
        // in the same neighbourhood as per-task maxMargin.
        let m = market(63, 150, 25);
        let sim = Simulator::new(&m);
        let instant = sim
            .run(&mut MaxMargin::new(), SimulationOptions::default())
            .total_profit(&m)
            .as_f64();
        let batched = run_batched(&m, TimeDelta::ZERO).total_profit(&m).as_f64();
        let lo = instant * 0.7 - 1.0;
        let hi = instant * 1.3 + 1.0;
        assert!(
            (lo..=hi).contains(&batched),
            "batched {batched} far from instant {instant}"
        );
    }

    #[test]
    fn batched_profit_below_offline_greedy() {
        let m = market(64, 150, 25);
        let offline = rideshare_core::solve_greedy(&m, Objective::Profit)
            .assignment
            .objective_value(&m, Objective::Profit)
            .as_f64();
        let batched = run_batched(&m, TimeDelta::from_mins(10))
            .total_profit(&m)
            .as_f64();
        assert!(
            batched <= offline + 1e-6,
            "batched {batched} beats offline greedy {offline}"
        );
    }

    #[test]
    fn empty_market_ok() {
        let m = market(65, 0, 5);
        let r = run_batched(&m, TimeDelta::from_mins(5));
        assert_eq!(r.served, 0);
        assert_eq!(r.rejected, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_window_rejected() {
        let m = market(66, 10, 2);
        let _ = run_batched(&m, TimeDelta::from_secs(-1));
    }
}
