//! Streaming replay: bounded-memory online dispatch over an event stream.
//!
//! Every other entry point of this crate replays a fully materialised
//! [`Market`] — fine for one day of Porto, fatal for the ROADMAP's
//! "millions of users": building the market alone is `O(trace)` memory
//! (and `O(M²)` time for the offline chain arcs, which online dispatch
//! never uses). [`StreamEngine`] instead consumes an ordered
//! [`StreamEvent`] iterator — shift announcements, published orders,
//! clock ticks — and keeps only what a real dispatch platform would:
//! per-driver projected state plus the orders currently being held for a
//! decision. Resident state is `O(active tasks + drivers)`, never
//! `O(trace)`; results leave through a [`StreamSink`] as they are decided.
//!
//! # Byte-identity with the materialized engines
//!
//! The streaming engine is not an approximation. Fed the same orders it
//! produces **byte-identical** results to the materialized paths, because
//! it runs literally the same code:
//!
//! - instant mode ([`StreamPolicy::Instant`]) drives each published order
//!   through the same candidate generator + policy step as
//!   [`crate::Simulator`],
//! - batched mode ([`StreamPolicy::Batched`]) closes hold windows through
//!   the exact `process_window` core the [`crate::BatchEngine`] uses
//!   (same early-flush epochs, same matcher rounds).
//!
//! The facade's `stream_equivalence` oracle suite pins this on the whole
//! scenario catalog. Two details make it work:
//!
//! - **Driver announcements come early.** A materialized engine knows
//!   every shift up front, and a driver whose shift starts hours from now
//!   can legally be dispatched an order published *now* (she departs when
//!   her shift opens). So a stream must announce a driver before the
//!   first order she could feasibly serve; announcing everyone up front —
//!   what [`market_events`] and the CLI's `replay` pipeline do — is always
//!   valid, and driver state is `O(drivers)` by design.
//! - **Retirement is lossless.** Once the decision clock passes a
//!   driver's shift end she can never again pass the return-home check,
//!   so the engine expires her (candidate scans skip her) without any
//!   observable difference. Held *tasks* retire at their decision epoch:
//!   instant orders are decided the moment their publish group closes,
//!   batched orders no later than their window end.
//!
//! Same-timestamp orders are decided in task-id order regardless of
//! arrival order, so delivery reordering within one timestamp cannot
//! change results (a property test pins this).
//!
//! # Examples
//!
//! Streaming a materialized market reproduces the simulator exactly:
//!
//! ```
//! use rideshare_core::{Market, MarketBuildOptions};
//! use rideshare_online::{
//!     market_events, replay_stream, CollectingSink, MaxMargin, SimulationOptions, Simulator,
//!     StreamOptions, StreamPolicy,
//! };
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let trace = TraceConfig::porto()
//!     .with_seed(9)
//!     .with_task_count(120)
//!     .with_driver_count(15, DriverModel::Hitchhiking)
//!     .generate();
//! let market = Market::from_trace(&trace, &MarketBuildOptions::default());
//!
//! let mut sink = CollectingSink::new();
//! let summary = replay_stream(
//!     market.speed(),
//!     market_events(&market),
//!     &mut StreamPolicy::Instant(&mut MaxMargin::new()),
//!     StreamOptions::default(),
//!     &mut sink,
//! );
//! let streamed = sink.into_result();
//!
//! let materialized =
//!     Simulator::new(&market).run(&mut MaxMargin::new(), SimulationOptions::default());
//! assert_eq!(streamed.dispatch, materialized.dispatch);
//! assert_eq!(streamed.events, materialized.events);
//! assert_eq!(summary.served, materialized.served);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rideshare_core::{Assignment, Driver, DriverRoute, Market, Task};
use rideshare_geo::{BoundingBox, SpeedModel};
use rideshare_types::{DriverId, TaskId, TimeDelta, Timestamp};

use crate::batch::{process_window, BatchMatcher};
use crate::candidates::{CandidateEngine, DriverState};
use crate::policy::DispatchPolicy;
use crate::simulator::{dispatch_instant, DispatchEvent, SimulationResult};

/// One event of an ordered market stream.
///
/// Contract (checked by [`StreamEngine::push`]): task events arrive in
/// non-decreasing publish order (ties in any order); a driver is announced
/// before the first task she could feasibly serve (announcing all drivers
/// up front is always valid); [`StreamEvent::EpochTick`] never moves the
/// clock backwards.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum StreamEvent {
    /// A driver announces her shift. Ids must be dense in announcement
    /// order (`DriverId(k)` is the `k`-th announcement).
    DriverOnline(Driver),
    /// A customer order is published, priced and timestamped.
    TaskPublished(Task),
    /// A hint that the driver's shift has ended; the engine retires her as
    /// soon as that is provably lossless (it also does so on its own once
    /// the clock passes her shift end, so the event is optional).
    DriverOffline(DriverId),
    /// Advances the stream clock: asserts every event strictly before the
    /// instant has been delivered, closing publish groups and hold windows
    /// that end before it. Lets quiet periods make progress without
    /// waiting for the next order.
    EpochTick(Timestamp),
}

impl StreamEvent {
    /// The event's own position on the stream clock, if it has one.
    #[must_use]
    pub fn timestamp(&self) -> Option<Timestamp> {
        match self {
            StreamEvent::TaskPublished(t) => Some(t.publish_time),
            StreamEvent::EpochTick(t) => Some(*t),
            StreamEvent::DriverOnline(_) | StreamEvent::DriverOffline(_) => None,
        }
    }
}

/// Where decided orders go. Implementations aggregate (windowed metrics),
/// collect (the oracle tests' [`CollectingSink`]), or forward — the engine
/// itself retains nothing per task once it is decided, which is what keeps
/// replay memory bounded.
pub trait StreamSink {
    /// A driver came online (fires before any dispatch can involve her).
    fn driver_online(&mut self, _driver: &Driver) {}
    /// `task` was dispatched; `event` carries the full operational record
    /// (arrival, decision time, wait, deadhead, Eq. 14 margin).
    fn dispatched(&mut self, _task: &Task, _event: &DispatchEvent) {}
    /// `task` was rejected at `decision_time` (empty candidate set, policy
    /// refusal, or unmatched at its batch epoch).
    fn rejected(&mut self, _task: &Task, _decision_time: Timestamp) {}
}

/// Options for a streaming replay.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamOptions {
    /// Maintain a spatial grid index over this service area for candidate
    /// pruning (lossless — identical results, different cost). `None`
    /// scans all live drivers linearly.
    pub grid_bbox: Option<BoundingBox>,
}

impl StreamOptions {
    /// Enables grid-pruned candidate generation over `bbox`.
    #[must_use]
    pub fn grid(mut self, bbox: BoundingBox) -> Self {
        self.grid_bbox = Some(bbox);
        self
    }
}

/// How the stream's orders are decided.
pub enum StreamPolicy<'p> {
    /// Instant dispatch at publish time through a per-task policy —
    /// the streaming form of [`crate::Simulator`] (Algs. 3–4).
    Instant(&'p mut dyn DispatchPolicy),
    /// Hold orders for `window` and decide jointly — the streaming form of
    /// [`crate::BatchEngine`], same early-flush epochs and matcher rounds.
    Batched {
        /// The hold window `W ≥ 0`.
        window: TimeDelta,
        /// The per-round matcher (e.g. [`crate::GreedyPairMatcher`]).
        matcher: &'p mut dyn BatchMatcher,
    },
}

/// Aggregate outcome of a streaming replay, including the high-water marks
/// that demonstrate the bounded-memory claim.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct StreamSummary {
    /// Orders consumed from the stream.
    pub tasks: usize,
    /// Orders dispatched to a driver.
    pub served: usize,
    /// Orders rejected.
    pub rejected: usize,
    /// Drivers announced.
    pub drivers: usize,
    /// Drivers retired by stream-clock expiry (their shift ended).
    pub expired_drivers: usize,
    /// High-water mark of simultaneously *held* (published, undecided)
    /// orders. Peak resident state is this plus `drivers` — the
    /// `O(active tasks + drivers)` bound, independent of trace length.
    pub peak_held_tasks: usize,
    /// The stream clock when the replay finished.
    pub clock: Timestamp,
}

impl StreamSummary {
    /// Peak resident entities (held orders + driver states): the number
    /// the bounded-memory acceptance criterion is about.
    #[must_use]
    pub fn peak_resident(&self) -> usize {
        self.peak_held_tasks + self.drivers
    }
}

/// What the engine is currently holding.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Hold {
    /// Nothing pending.
    Empty,
    /// An instant-mode publish group, all at this timestamp.
    Instant(Timestamp),
    /// A batched-mode hold window closing at this instant.
    Window(Timestamp),
}

/// The push-based streaming replay engine. See the module docs for the
/// model; [`replay_stream`] is the pull-everything convenience wrapper.
pub struct StreamEngine {
    speed: SpeedModel,
    engine: CandidateEngine,
    drivers: Vec<Driver>,
    states: Vec<DriverState>,
    /// Min-heap of `(shift_end, driver)` for lazy lossless retirement.
    expiry: BinaryHeap<Reverse<(i64, usize)>>,
    pending: Vec<Task>,
    hold: Hold,
    /// Latest instant through which decisions are final; new tasks must
    /// publish strictly later.
    decided_through: Option<Timestamp>,
    /// Greatest event timestamp seen; `None` until the first timestamped
    /// event (orders may legally publish before the epoch, so zero is not
    /// a valid starting clock).
    clock: Option<Timestamp>,
    tasks: usize,
    served: usize,
    rejected: usize,
    peak_held: usize,
}

impl StreamEngine {
    /// Creates an engine with no drivers and nothing pending.
    #[must_use]
    pub fn new(speed: SpeedModel, options: StreamOptions) -> Self {
        Self {
            speed,
            engine: CandidateEngine::streaming(speed, options.grid_bbox),
            drivers: Vec::new(),
            states: Vec::new(),
            expiry: BinaryHeap::new(),
            pending: Vec::new(),
            hold: Hold::Empty,
            decided_through: None,
            clock: None,
            tasks: 0,
            served: 0,
            rejected: 0,
            peak_held: 0,
        }
    }

    /// Orders currently held (published but undecided).
    #[must_use]
    pub fn held_tasks(&self) -> usize {
        self.pending.len()
    }

    /// Drivers announced so far.
    #[must_use]
    pub fn driver_count(&self) -> usize {
        self.drivers.len()
    }

    /// Feeds one event. Decisions triggered by it (a publish group or hold
    /// window closing) flow into `sink`. Pass the *same* `policy` for the
    /// whole stream — instant and batched holds are not interchangeable
    /// mid-flight.
    ///
    /// # Panics
    ///
    /// Panics when the stream violates its contract: task events out of
    /// publish order (or publishing into an already-decided instant), a
    /// clock tick moving backwards, non-dense driver ids, an unknown
    /// driver in [`StreamEvent::DriverOffline`], or a `policy` kind that
    /// contradicts the orders currently held.
    pub fn push(
        &mut self,
        event: StreamEvent,
        policy: &mut StreamPolicy<'_>,
        sink: &mut dyn StreamSink,
    ) {
        match event {
            StreamEvent::DriverOnline(driver) => {
                assert_eq!(
                    driver.id.index(),
                    self.drivers.len(),
                    "driver ids must be dense in announcement order"
                );
                sink.driver_online(&driver);
                self.engine.add_driver(&mut self.states, &driver);
                self.expiry
                    .push(Reverse((driver.shift_end.as_secs(), driver.id.index())));
                self.drivers.push(driver);
            }
            StreamEvent::TaskPublished(task) => {
                let publish = task.publish_time;
                if let Some(done) = self.decided_through {
                    assert!(
                        publish > done,
                        "stream went backwards: order published at {publish} but decisions are \
                         final through {done}"
                    );
                }
                // A tick to `t` promised everything before `t` was already
                // delivered; an order publishing below the clock breaks
                // that promise (and would invalidate clock-based driver
                // expiry). Same-instant arrivals are fine.
                if let Some(clock) = self.clock {
                    assert!(
                        publish >= clock,
                        "stream went backwards: order published at {publish} behind the clock at                          {clock}"
                    );
                }
                match (&*policy, self.hold) {
                    (StreamPolicy::Instant(_), Hold::Instant(at)) if publish > at => {
                        self.flush(policy, sink);
                    }
                    (StreamPolicy::Batched { .. }, Hold::Window(end)) if publish > end => {
                        self.flush(policy, sink);
                    }
                    _ => {}
                }
                if self.hold == Hold::Empty {
                    self.hold = match policy {
                        StreamPolicy::Instant(_) => Hold::Instant(publish),
                        StreamPolicy::Batched { window, .. } => {
                            assert!(
                                window.is_non_negative(),
                                "batch window must be non-negative"
                            );
                            Hold::Window(publish + *window)
                        }
                    };
                }
                self.clock = Some(publish);
                self.tasks += 1;
                self.pending.push(task);
                self.peak_held = self.peak_held.max(self.pending.len());
            }
            StreamEvent::DriverOffline(id) => {
                let d = id.index();
                assert!(d < self.drivers.len(), "DriverOffline for unknown {id}");
                // Only retire when provably lossless: no held or future
                // order can be decided early enough for her to get home
                // (held orders publish no later than the clock, so the
                // earliest held publish is the binding floor).
                let floor = self.pending.first().map(|t| t.publish_time).or(self.clock);
                if floor.is_some_and(|f| self.drivers[d].shift_end < f) {
                    self.engine.expire(d);
                }
            }
            StreamEvent::EpochTick(t) => {
                if let Some(clock) = self.clock {
                    assert!(t >= clock, "clock tick to {t} behind {clock}");
                }
                self.clock = Some(t);
                match self.hold {
                    Hold::Instant(at) if at < t => self.flush(policy, sink),
                    Hold::Window(end) if end < t => self.flush(policy, sink),
                    _ => {}
                }
            }
        }
    }

    /// Closes whatever is still held and returns the replay summary.
    #[must_use]
    pub fn finish(
        mut self,
        policy: &mut StreamPolicy<'_>,
        sink: &mut dyn StreamSink,
    ) -> StreamSummary {
        if self.hold != Hold::Empty {
            self.flush(policy, sink);
        }
        StreamSummary {
            tasks: self.tasks,
            served: self.served,
            rejected: self.rejected,
            drivers: self.drivers.len(),
            expired_drivers: self.engine.expired_count(),
            peak_held_tasks: self.peak_held,
            clock: self.clock.unwrap_or(Timestamp::EPOCH),
        }
    }

    /// Decides the currently held group/window.
    fn flush(&mut self, policy: &mut StreamPolicy<'_>, sink: &mut dyn StreamSink) {
        let hold = std::mem::replace(&mut self.hold, Hold::Empty);
        if self.pending.is_empty() {
            return;
        }
        // Retire drivers whose shift ended before any held (or future)
        // order was even published — they fail the return-home check for
        // everything from here on, so skipping them cannot change results.
        let window_start = self.pending[0].publish_time;
        while let Some(&Reverse((end, d))) = self.expiry.peek() {
            if Timestamp::from_secs(end) < window_start {
                self.engine.expire(d);
                self.expiry.pop();
            } else {
                break;
            }
        }

        let pending = std::mem::take(&mut self.pending);
        match (hold, policy) {
            (Hold::Instant(at), StreamPolicy::Instant(choose)) => {
                // Same-timestamp orders decide in task-id order, making
                // intra-timestamp delivery order irrelevant.
                let mut group = pending;
                group.sort_by_key(|t| t.id.index());
                for task in &group {
                    match dispatch_instant(
                        &mut self.engine,
                        &self.drivers,
                        &mut self.states,
                        self.speed,
                        task,
                        task.publish_time,
                        &mut **choose,
                    ) {
                        Some(event) => {
                            sink.dispatched(task, &event);
                            self.served += 1;
                        }
                        None => {
                            sink.rejected(task, task.publish_time);
                            self.rejected += 1;
                        }
                    }
                }
                self.decided_through = Some(at);
            }
            (Hold::Window(end), StreamPolicy::Batched { matcher, .. }) => {
                let mut served = 0usize;
                let mut rejected = 0usize;
                process_window(
                    &mut self.engine,
                    &self.drivers,
                    &mut self.states,
                    self.speed,
                    &pending,
                    end,
                    &mut **matcher,
                    &mut |task, at, decision| match decision {
                        Some(event) => {
                            sink.dispatched(task, &event);
                            served += 1;
                        }
                        None => {
                            sink.rejected(task, at);
                            rejected += 1;
                        }
                    },
                );
                self.served += served;
                self.rejected += rejected;
                self.decided_through = Some(end);
            }
            (held, _) => panic!("policy kind changed mid-stream while holding {held:?}"),
        }
    }
}

/// Replays a whole event stream through `policy` into `sink` — the
/// one-call form of [`StreamEngine`]. Memory stays
/// `O(active tasks + drivers)` no matter how long `events` runs; see
/// [`StreamSummary::peak_resident`] for the realised high-water mark.
///
/// # Panics
///
/// Panics when the stream violates the ordering contract (see
/// [`StreamEngine::push`]).
pub fn replay_stream<I>(
    speed: SpeedModel,
    events: I,
    policy: &mut StreamPolicy<'_>,
    options: StreamOptions,
    sink: &mut dyn StreamSink,
) -> StreamSummary
where
    I: IntoIterator<Item = StreamEvent>,
{
    let mut engine = StreamEngine::new(speed, options);
    for event in events {
        engine.push(event, policy, sink);
    }
    engine.finish(policy, sink)
}

/// The event stream of a materialized market: every driver announced up
/// front (always a valid announcement order), then every task in publish
/// order, both re-labelled positionally. Feeding this to [`replay_stream`]
/// reproduces the corresponding materialized engine byte-for-byte — the
/// bridge the oracle tests (and any caller migrating to streaming) use.
#[must_use]
pub fn market_events(market: &Market) -> Vec<StreamEvent> {
    let mut events: Vec<StreamEvent> = market
        .drivers()
        .iter()
        .enumerate()
        .map(|(n, d)| {
            StreamEvent::DriverOnline(Driver {
                id: DriverId::new(n as u32),
                ..*d
            })
        })
        .collect();
    let mut order: Vec<usize> = (0..market.num_tasks()).collect();
    order.sort_by_key(|&t| (market.tasks()[t].publish_time, t));
    events.extend(order.into_iter().map(|t| {
        StreamEvent::TaskPublished(Task {
            id: TaskId::new(t as u32),
            ..market.tasks()[t]
        })
    }));
    events
}

/// A [`StreamSink`] that collects everything into a full
/// [`SimulationResult`] — `O(trace)` memory by definition, so this is for
/// the oracle tests and small runs, not for million-task replays (use an
/// aggregating sink like `rideshare-metrics`'s `StreamMetrics` there).
#[derive(Clone, Debug, Default)]
pub struct CollectingSink {
    routes: Vec<DriverRoute>,
    dispatch: Vec<Option<DriverId>>,
    events: Vec<DispatchEvent>,
    served: usize,
    rejected: usize,
}

impl CollectingSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reserve_task(&mut self, idx: usize) {
        if self.dispatch.len() <= idx {
            self.dispatch.resize(idx + 1, None);
        }
    }

    /// The collected [`SimulationResult`], shaped exactly like the
    /// materialized engines' output (validate with
    /// [`crate::validate_online_result`]).
    #[must_use]
    pub fn into_result(self) -> SimulationResult {
        SimulationResult {
            assignment: Assignment::from_routes(self.routes),
            served: self.served,
            rejected: self.rejected,
            dispatch: self.dispatch,
            events: self.events,
        }
    }
}

impl StreamSink for CollectingSink {
    fn driver_online(&mut self, _driver: &Driver) {
        self.routes.push(DriverRoute::default());
    }

    fn dispatched(&mut self, task: &Task, event: &DispatchEvent) {
        self.reserve_task(task.id.index());
        self.dispatch[task.id.index()] = Some(event.driver);
        self.routes[event.driver.index()].tasks.push(event.task);
        self.events.push(*event);
        self.served += 1;
    }

    fn rejected(&mut self, task: &Task, _decision_time: Timestamp) {
        self.reserve_task(task.id.index());
        self.rejected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchOptions, GreedyPairMatcher, MatcherKind, OptimalAssignmentMatcher};
    use crate::policy::{MaxMargin, NearestDriver};
    use crate::simulator::{SimulationOptions, Simulator};
    use crate::validate::validate_online_result;
    use rideshare_core::{Market, MarketBuildOptions};
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    fn assert_same(streamed: &SimulationResult, materialized: &SimulationResult) {
        assert_eq!(streamed.dispatch, materialized.dispatch);
        assert_eq!(streamed.events, materialized.events);
        assert_eq!(streamed.served, materialized.served);
        assert_eq!(streamed.rejected, materialized.rejected);
        assert_eq!(
            streamed.assignment.routes(),
            materialized.assignment.routes()
        );
    }

    #[test]
    fn instant_stream_matches_simulator() {
        let m = market(81, 150, 20);
        for use_grid in [false, true] {
            let mut sink = CollectingSink::new();
            let options = if use_grid {
                StreamOptions::default().grid(rideshare_geo::porto::bounding_box())
            } else {
                StreamOptions::default()
            };
            let summary = replay_stream(
                m.speed(),
                market_events(&m),
                &mut StreamPolicy::Instant(&mut MaxMargin::new()),
                options,
                &mut sink,
            );
            let streamed = sink.into_result();
            let materialized =
                Simulator::new(&m).run(&mut MaxMargin::new(), SimulationOptions::default());
            assert_same(&streamed, &materialized);
            validate_online_result(&m, &streamed).unwrap();
            assert_eq!(summary.tasks, m.num_tasks());
            assert_eq!(summary.served + summary.rejected, summary.tasks);
        }
    }

    #[test]
    fn instant_stream_matches_seeded_nearest() {
        let m = market(82, 100, 12);
        let mut sink = CollectingSink::new();
        replay_stream(
            m.speed(),
            market_events(&m),
            &mut StreamPolicy::Instant(&mut NearestDriver::with_seed(7)),
            StreamOptions::default(),
            &mut sink,
        );
        let materialized = Simulator::new(&m).run(
            &mut NearestDriver::with_seed(7),
            SimulationOptions::default(),
        );
        assert_same(&sink.into_result(), &materialized);
    }

    #[test]
    fn batched_stream_matches_batch_engine() {
        let m = market(83, 120, 18);
        for mins in [0i64, 2, 10] {
            for optimal in [false, true] {
                let window = TimeDelta::from_mins(mins);
                let mut sink = CollectingSink::new();
                let mut greedy = GreedyPairMatcher;
                let mut opt = OptimalAssignmentMatcher;
                let matcher: &mut dyn BatchMatcher = if optimal { &mut opt } else { &mut greedy };
                replay_stream(
                    m.speed(),
                    market_events(&m),
                    &mut StreamPolicy::Batched { window, matcher },
                    StreamOptions::default(),
                    &mut sink,
                );
                let kind = if optimal {
                    MatcherKind::Optimal
                } else {
                    MatcherKind::Greedy
                };
                let materialized = crate::batch::run_batched_with(
                    &m,
                    BatchOptions::with_window(window).matcher(kind),
                );
                assert_same(&sink.into_result(), &materialized);
            }
        }
    }

    #[test]
    fn epoch_ticks_flush_windows_without_changing_results() {
        let m = market(84, 90, 10);
        let window = TimeDelta::from_mins(5);
        // Interleave hourly clock ticks into the stream.
        let mut events = market_events(&m);
        let mut ticked = Vec::new();
        let mut next_tick = Timestamp::from_hours(1);
        for e in events.drain(..) {
            if let Some(at) = e.timestamp() {
                while next_tick <= at {
                    ticked.push(StreamEvent::EpochTick(next_tick));
                    next_tick += TimeDelta::from_hours(1);
                }
            }
            ticked.push(e);
        }
        ticked.push(StreamEvent::EpochTick(Timestamp::from_hours(30)));

        let mut sink = CollectingSink::new();
        let mut matcher = GreedyPairMatcher;
        replay_stream(
            m.speed(),
            ticked,
            &mut StreamPolicy::Batched {
                window,
                matcher: &mut matcher,
            },
            StreamOptions::default(),
            &mut sink,
        );
        let materialized = crate::batch::run_batched(&m, window);
        assert_same(&sink.into_result(), &materialized);
    }

    #[test]
    fn held_tasks_stay_bounded() {
        let m = market(85, 400, 25);
        let mut sink = CollectingSink::new();
        let mut matcher = GreedyPairMatcher;
        let summary = replay_stream(
            m.speed(),
            market_events(&m),
            &mut StreamPolicy::Batched {
                window: TimeDelta::from_mins(3),
                matcher: &mut matcher,
            },
            StreamOptions::default(),
            &mut sink,
        );
        // Resident state is the held window + drivers, far below the trace.
        assert!(summary.peak_held_tasks > 0);
        assert!(
            summary.peak_held_tasks < m.num_tasks() / 4,
            "peak {} for {} tasks",
            summary.peak_held_tasks,
            m.num_tasks()
        );
        assert_eq!(summary.peak_resident(), summary.peak_held_tasks + 25);
    }

    #[test]
    fn driver_offline_and_expiry_change_nothing() {
        let m = market(86, 120, 20);
        // Interleave DriverOffline hints after each driver's shift end.
        let mut events = Vec::new();
        let mut offline: Vec<(Timestamp, DriverId)> =
            m.drivers().iter().map(|d| (d.shift_end, d.id)).collect();
        offline.sort_by_key(|&(t, id)| (t, id.index()));
        let mut oi = 0usize;
        for e in market_events(&m) {
            if let Some(at) = e.timestamp() {
                while oi < offline.len() && offline[oi].0 < at {
                    events.push(StreamEvent::DriverOffline(offline[oi].1));
                    oi += 1;
                }
            }
            events.push(e);
        }
        let mut sink = CollectingSink::new();
        let summary = replay_stream(
            m.speed(),
            events,
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
        let materialized =
            Simulator::new(&m).run(&mut MaxMargin::new(), SimulationOptions::default());
        assert_same(&sink.into_result(), &materialized);
        assert!(summary.expired_drivers > 0, "no shift ended mid-stream");
    }

    #[test]
    #[should_panic(expected = "stream went backwards")]
    fn out_of_order_publish_rejected() {
        let m = market(87, 30, 5);
        let mut events = market_events(&m);
        // Swap two task events across different timestamps.
        let tasks: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, StreamEvent::TaskPublished(_)))
            .map(|(i, _)| i)
            .collect();
        events.swap(tasks[0], tasks[tasks.len() - 1]);
        let mut sink = CollectingSink::new();
        let _ = replay_stream(
            m.speed(),
            events,
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_driver_ids_rejected() {
        let m = market(88, 5, 2);
        let mut events = market_events(&m);
        if let StreamEvent::DriverOnline(d) = &mut events[0] {
            d.id = DriverId::new(5);
        }
        let mut sink = CollectingSink::new();
        let _ = replay_stream(
            m.speed(),
            events,
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
    }
}
