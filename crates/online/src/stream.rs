//! Streaming replay: bounded-memory online dispatch over an event stream.
//!
//! Every other entry point of this crate replays a fully materialised
//! [`Market`] — fine for one day of Porto, fatal for the ROADMAP's
//! "millions of users": building the market alone is `O(trace)` memory
//! (and `O(M²)` time for the offline chain arcs, which online dispatch
//! never uses). [`StreamEngine`] instead consumes an ordered
//! [`StreamEvent`] iterator — shift announcements, published orders,
//! clock ticks — and keeps only what a real dispatch platform would:
//! per-driver projected state plus the orders currently being held for a
//! decision. Resident state is `O(active tasks + drivers)`, never
//! `O(trace)`; results leave through a [`StreamSink`] as they are decided.
//!
//! # Byte-identity with the materialized engines
//!
//! The streaming engine is not an approximation. Fed the same orders it
//! produces **byte-identical** results to the materialized paths, because
//! it runs literally the same code:
//!
//! - instant mode ([`StreamPolicy::Instant`]) drives each published order
//!   through the same candidate generator + policy step as
//!   [`crate::Simulator`],
//! - batched mode ([`StreamPolicy::Batched`]) closes hold windows through
//!   the exact `process_window` core the [`crate::BatchEngine`] uses
//!   (same early-flush epochs, same matcher rounds).
//!
//! The facade's `stream_equivalence` oracle suite pins this on the whole
//! scenario catalog. Two details make it work:
//!
//! - **Driver announcements come early.** A materialized engine knows
//!   every shift up front, and a driver whose shift starts hours from now
//!   can legally be dispatched an order published *now* (she departs when
//!   her shift opens). So a stream must announce a driver before the
//!   first order she could feasibly serve; announcing everyone up front —
//!   what [`market_events`] and the CLI's `replay` pipeline do — is always
//!   valid, and driver state is `O(drivers)` by design.
//! - **Retirement is lossless.** Once the decision clock passes a
//!   driver's shift end she can never again pass the return-home check,
//!   so the engine expires her (candidate scans skip her) without any
//!   observable difference. Held *tasks* retire at their decision epoch:
//!   instant orders are decided the moment their publish group closes,
//!   batched orders no later than their window end.
//!
//! Same-timestamp orders are decided in task-id order regardless of
//! arrival order, so delivery reordering within one timestamp cannot
//! change results (a property test pins this).
//!
//! # Examples
//!
//! Streaming a materialized market reproduces the simulator exactly:
//!
//! ```
//! use rideshare_core::{Market, MarketBuildOptions};
//! use rideshare_online::{
//!     market_events, replay_stream, CollectingSink, MaxMargin, SimulationOptions, Simulator,
//!     StreamOptions, StreamPolicy,
//! };
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let trace = TraceConfig::porto()
//!     .with_seed(9)
//!     .with_task_count(120)
//!     .with_driver_count(15, DriverModel::Hitchhiking)
//!     .generate();
//! let market = Market::from_trace(&trace, &MarketBuildOptions::default());
//!
//! let mut sink = CollectingSink::new();
//! let summary = replay_stream(
//!     market.speed(),
//!     market_events(&market),
//!     &mut StreamPolicy::Instant(&mut MaxMargin::new()),
//!     StreamOptions::default(),
//!     &mut sink,
//! );
//! let streamed = sink.into_result();
//!
//! let materialized =
//!     Simulator::new(&market).run(&mut MaxMargin::new(), SimulationOptions::default());
//! assert_eq!(streamed.dispatch, materialized.dispatch);
//! assert_eq!(streamed.events, materialized.events);
//! assert_eq!(summary.served, materialized.served);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rideshare_core::{Assignment, Driver, DriverRoute, Market, Task};
use rideshare_geo::{BoundingBox, SpeedModel};
use rideshare_types::{DriverId, TaskId, TimeDelta, Timestamp};

use crate::batch::{process_window, BatchMatcher, WindowScratch};
use crate::candidates::{CandidateEngine, DriverStates};
use crate::policy::{Candidate, DispatchPolicy};
use crate::simulator::{dispatch_instant, DispatchEvent, SimulationResult};

/// One event of an ordered market stream.
///
/// Contract (checked by [`StreamEngine::push`]): task events arrive in
/// non-decreasing publish order (ties in any order); a driver is announced
/// before the first task she could feasibly serve (announcing all drivers
/// up front is always valid); [`StreamEvent::EpochTick`] never moves the
/// clock backwards.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum StreamEvent {
    /// A driver announces her shift. Ids must be dense in announcement
    /// order (`DriverId(k)` is the `k`-th announcement).
    DriverOnline(Driver),
    /// A customer order is published, priced and timestamped.
    TaskPublished(Task),
    /// A hint that the driver's shift has ended; the engine retires her as
    /// soon as that is provably lossless (it also does so on its own once
    /// the clock passes her shift end, so the event is optional).
    DriverOffline(DriverId),
    /// Advances the stream clock: asserts every event strictly before the
    /// instant has been delivered, closing publish groups and hold windows
    /// that end before it. Lets quiet periods make progress without
    /// waiting for the next order.
    EpochTick(Timestamp),
}

impl StreamEvent {
    /// The event's own position on the stream clock, if it has one.
    #[must_use]
    pub fn timestamp(&self) -> Option<Timestamp> {
        match self {
            StreamEvent::TaskPublished(t) => Some(t.publish_time),
            StreamEvent::EpochTick(t) => Some(*t),
            StreamEvent::DriverOnline(_) | StreamEvent::DriverOffline(_) => None,
        }
    }
}

/// Where decided orders go. Implementations aggregate (windowed metrics),
/// collect (the oracle tests' [`CollectingSink`]), or forward — the engine
/// itself retains nothing per task once it is decided, which is what keeps
/// replay memory bounded.
pub trait StreamSink {
    /// A driver came online (fires before any dispatch can involve her).
    fn driver_online(&mut self, _driver: &Driver) {}
    /// `task` was dispatched; `event` carries the full operational record
    /// (arrival, decision time, wait, deadhead, Eq. 14 margin).
    fn dispatched(&mut self, _task: &Task, _event: &DispatchEvent) {}
    /// `task` was rejected at `decision_time` (empty candidate set, policy
    /// refusal, or unmatched at its batch epoch).
    fn rejected(&mut self, _task: &Task, _decision_time: Timestamp) {}
    /// A publish group or batch window was fully decided: every
    /// `dispatched`/`rejected` call for it has been delivered, and
    /// decisions are final through `end`. The serve daemon hangs snapshot
    /// and day-rollover logic off this hook because boundaries land on
    /// the *stream* clock — identical across shard counts and ingestion
    /// backends — never on wall time.
    fn window_closed(&mut self, _end: Timestamp) {}
}

/// Options for a streaming replay.
#[derive(Clone, Copy, Debug)]
pub struct StreamOptions {
    /// Maintain a spatial grid index over this service area for candidate
    /// pruning (lossless — identical results, different cost). `None`
    /// scans all live drivers linearly.
    pub grid_bbox: Option<BoundingBox>,
    /// Garbage-collect expired drivers' resident state once at least this
    /// many are flagged (checked at each flush). Without compaction,
    /// resident state is `O(all drivers ever announced)` — fatal for
    /// week-long streams with fleet churn; with it, provably-irrelevant
    /// drivers are freed losslessly (batched mode keeps a frozen location
    /// "ghost" per driver for `latest_decision` parity — the subtle case
    /// `candidates.rs` documents). `usize::MAX` disables compaction.
    ///
    /// `0` is equivalent to `1` ("compact as soon as any driver expires"):
    /// compaction can fire no more eagerly than that, so the engine clamps
    /// the threshold to at least one. [`StreamOptions::compaction`] applies
    /// the same clamp up front, keeping the stored option equal to what
    /// the engine will actually use.
    pub compact_threshold: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            grid_bbox: None,
            compact_threshold: 64,
        }
    }
}

impl StreamOptions {
    /// Enables grid-pruned candidate generation over `bbox`.
    #[must_use]
    pub fn grid(mut self, bbox: BoundingBox) -> Self {
        self.grid_bbox = Some(bbox);
        self
    }

    /// Sets the expired-driver compaction threshold.
    ///
    /// `0` is clamped to `1`: "compact whenever at least zero drivers are
    /// expired" would fire at every flush — even with nothing to free —
    /// which is never what a caller means. The clamped value is stored, so
    /// the option always reads back as the threshold the engine runs with
    /// (use [`StreamOptions::no_compaction`] to disable compaction; that
    /// sentinel is `usize::MAX`, not `0`).
    #[must_use]
    pub fn compaction(mut self, threshold: usize) -> Self {
        self.compact_threshold = threshold.max(1);
        self
    }

    /// Disables expired-driver compaction (flag-skipping only, as in PR 4).
    #[must_use]
    pub fn no_compaction(mut self) -> Self {
        self.compact_threshold = usize::MAX;
        self
    }
}

/// How the stream's orders are decided.
pub enum StreamPolicy<'p> {
    /// Instant dispatch at publish time through a per-task policy —
    /// the streaming form of [`crate::Simulator`] (Algs. 3–4).
    Instant(&'p mut dyn DispatchPolicy),
    /// Hold orders for `window` and decide jointly — the streaming form of
    /// [`crate::BatchEngine`], same early-flush epochs and matcher rounds.
    Batched {
        /// The hold window `W ≥ 0`.
        window: TimeDelta,
        /// The per-round matcher (e.g. [`crate::GreedyPairMatcher`]).
        matcher: &'p mut dyn BatchMatcher,
    },
}

/// Aggregate outcome of a streaming replay, including the high-water marks
/// that demonstrate the bounded-memory claim.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct StreamSummary {
    /// Orders consumed from the stream.
    pub tasks: usize,
    /// Orders dispatched to a driver.
    pub served: usize,
    /// Orders rejected.
    pub rejected: usize,
    /// Drivers announced.
    pub drivers: usize,
    /// Drivers retired by stream-clock expiry (their shift ended).
    pub expired_drivers: usize,
    /// Of the expired drivers, how many were *compacted*: their resident
    /// state (record, projected state, grid entry) was garbage-collected,
    /// not just flag-skipped. See [`StreamOptions::compact_threshold`].
    pub compacted_drivers: usize,
    /// High-water mark of simultaneously *held* (published, undecided)
    /// orders. Peak resident state is this plus `drivers` — the
    /// `O(active tasks + drivers)` bound, independent of trace length.
    pub peak_held_tasks: usize,
    /// The stream clock when the replay finished.
    pub clock: Timestamp,
}

impl StreamSummary {
    /// Peak resident entities (held orders + driver states): the number
    /// the bounded-memory acceptance criterion is about.
    #[must_use]
    pub fn peak_resident(&self) -> usize {
        self.peak_held_tasks + self.drivers
    }
}

/// What the engine is currently holding.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Hold {
    /// Nothing pending.
    Empty,
    /// An instant-mode publish group, all at this timestamp.
    Instant(Timestamp),
    /// A batched-mode hold window closing at this instant.
    Window(Timestamp),
}

/// The push-based streaming replay engine. See the module docs for the
/// model; [`replay_stream`] is the pull-everything convenience wrapper.
pub struct StreamEngine {
    speed: SpeedModel,
    engine: CandidateEngine,
    /// Live (non-compacted) driver records, positionally aligned with
    /// `states`. Slot indices are engine-internal: they compact when
    /// expired drivers are garbage-collected, while the ids the sink sees
    /// stay the announced ones (`ids` maps slot → announced id).
    drivers: Vec<Driver>,
    states: DriverStates,
    /// Announced id of each live slot (sink-facing identity).
    ids: Vec<DriverId>,
    /// Live slot of each announced driver; `None` once compacted.
    slots: Vec<Option<usize>>,
    /// Min-heap of `(shift_end, slot)` for lazy lossless retirement.
    expiry: BinaryHeap<Reverse<(i64, usize)>>,
    /// Compact once this many expired flags accumulate (`usize::MAX` off).
    compact_threshold: usize,
    /// Cumulative drivers retired (flagged or compacted).
    expired_total: usize,
    /// Cumulative drivers garbage-collected.
    compacted: usize,
    pending: Vec<Task>,
    /// Swap buffer for [`StreamEngine::flush`]: the group being decided
    /// trades places with `pending`, so both vectors keep their capacity
    /// across the replay instead of reallocating per publish group.
    deciding: Vec<Task>,
    /// Reusable candidate arena for instant-mode dispatch.
    cand_scratch: Vec<Candidate>,
    /// Reusable per-window working memory for batched-mode dispatch.
    win_scratch: WindowScratch,
    hold: Hold,
    /// Latest instant through which decisions are final; new tasks must
    /// publish strictly later.
    decided_through: Option<Timestamp>,
    /// Greatest event timestamp seen; `None` until the first timestamped
    /// event (orders may legally publish before the epoch, so zero is not
    /// a valid starting clock).
    clock: Option<Timestamp>,
    tasks: usize,
    served: usize,
    rejected: usize,
    peak_held: usize,
}

impl StreamEngine {
    /// Creates an engine with no drivers and nothing pending.
    #[must_use]
    pub fn new(speed: SpeedModel, options: StreamOptions) -> Self {
        Self {
            speed,
            engine: CandidateEngine::streaming(speed, options.grid_bbox),
            drivers: Vec::new(),
            states: DriverStates::new(),
            ids: Vec::new(),
            slots: Vec::new(),
            expiry: BinaryHeap::new(),
            // Same clamp as `StreamOptions::compaction` — the field is
            // public, so a hand-built `0` still means "eagerest", not
            // "every flush".
            compact_threshold: options.compact_threshold.max(1),
            expired_total: 0,
            compacted: 0,
            pending: Vec::new(),
            deciding: Vec::new(),
            cand_scratch: Vec::new(),
            win_scratch: WindowScratch::default(),
            hold: Hold::Empty,
            decided_through: None,
            clock: None,
            tasks: 0,
            served: 0,
            rejected: 0,
            peak_held: 0,
        }
    }

    /// Orders currently held (published but undecided).
    #[must_use]
    pub fn held_tasks(&self) -> usize {
        self.pending.len()
    }

    /// Drivers announced so far.
    #[must_use]
    pub fn driver_count(&self) -> usize {
        self.slots.len()
    }

    /// Drivers currently resident (announced minus compacted) — the number
    /// the bounded-memory claim is really about once fleets churn.
    #[must_use]
    pub fn resident_drivers(&self) -> usize {
        self.drivers.len()
    }

    /// Feeds one event. Decisions triggered by it (a publish group or hold
    /// window closing) flow into `sink`. Pass the *same* `policy` for the
    /// whole stream — instant and batched holds are not interchangeable
    /// mid-flight.
    ///
    /// # Panics
    ///
    /// Panics when the stream violates its contract: task events out of
    /// publish order (or publishing into an already-decided instant), a
    /// clock tick moving backwards, non-dense driver ids, an unknown
    /// driver in [`StreamEvent::DriverOffline`], or a `policy` kind that
    /// contradicts the orders currently held.
    pub fn push(
        &mut self,
        event: StreamEvent,
        policy: &mut StreamPolicy<'_>,
        sink: &mut dyn StreamSink,
    ) {
        match event {
            StreamEvent::DriverOnline(driver) => {
                assert_eq!(
                    driver.id.index(),
                    self.slots.len(),
                    "driver ids must be dense in announcement order"
                );
                sink.driver_online(&driver);
                let slot = self.drivers.len();
                self.engine.add_driver(&mut self.states, &driver);
                self.expiry
                    .push(Reverse((driver.shift_end.as_secs(), slot)));
                self.slots.push(Some(slot));
                self.ids.push(driver.id);
                self.drivers.push(driver);
            }
            StreamEvent::TaskPublished(task) => {
                let publish = task.publish_time;
                if let Some(done) = self.decided_through {
                    assert!(
                        publish > done,
                        "stream went backwards: order published at {publish} but decisions are \
                         final through {done}"
                    );
                }
                // A tick to `t` promised everything before `t` was already
                // delivered; an order publishing below the clock breaks
                // that promise (and would invalidate clock-based driver
                // expiry). Same-instant arrivals are fine.
                if let Some(clock) = self.clock {
                    assert!(
                        publish >= clock,
                        "stream went backwards: order published at {publish} behind the clock at                          {clock}"
                    );
                }
                match (&*policy, self.hold) {
                    (StreamPolicy::Instant(_), Hold::Instant(at)) if publish > at => {
                        self.flush(policy, sink);
                    }
                    (StreamPolicy::Batched { .. }, Hold::Window(end)) if publish > end => {
                        self.flush(policy, sink);
                    }
                    _ => {}
                }
                if self.hold == Hold::Empty {
                    self.hold = match policy {
                        StreamPolicy::Instant(_) => Hold::Instant(publish),
                        StreamPolicy::Batched { window, .. } => {
                            assert!(
                                window.is_non_negative(),
                                "batch window must be non-negative"
                            );
                            Hold::Window(publish + *window)
                        }
                    };
                }
                self.clock = Some(publish);
                self.tasks += 1;
                self.pending.push(task);
                self.peak_held = self.peak_held.max(self.pending.len());
            }
            StreamEvent::DriverOffline(id) => {
                assert!(
                    id.index() < self.slots.len(),
                    "DriverOffline for unknown {id}"
                );
                // Already compacted ⇒ already provably retired.
                let Some(d) = self.slots[id.index()] else {
                    return;
                };
                // Only retire when provably lossless: no held or future
                // order can be decided early enough for her to get home
                // (held orders publish no later than the clock, so the
                // earliest held publish is the binding floor).
                let floor = self.pending.first().map(|t| t.publish_time).or(self.clock);
                if floor.is_some_and(|f| self.drivers[d].shift_end < f)
                    && self.engine.expire(&mut self.states, d)
                {
                    self.expired_total += 1;
                }
            }
            StreamEvent::EpochTick(t) => {
                if let Some(clock) = self.clock {
                    assert!(t >= clock, "clock tick to {t} behind {clock}");
                }
                self.clock = Some(t);
                match self.hold {
                    Hold::Instant(at) if at < t => self.flush(policy, sink),
                    Hold::Window(end) if end < t => self.flush(policy, sink),
                    _ => {}
                }
            }
        }
    }

    /// Closes whatever is still held and returns the replay summary.
    #[must_use]
    pub fn finish(
        mut self,
        policy: &mut StreamPolicy<'_>,
        sink: &mut dyn StreamSink,
    ) -> StreamSummary {
        if self.hold != Hold::Empty {
            self.flush(policy, sink);
        }
        StreamSummary {
            tasks: self.tasks,
            served: self.served,
            rejected: self.rejected,
            drivers: self.slots.len(),
            expired_drivers: self.expired_total,
            compacted_drivers: self.compacted,
            peak_held_tasks: self.peak_held,
            clock: self.clock.unwrap_or(Timestamp::EPOCH),
        }
    }

    /// Anchors a batched hold window opening at `at` — the region-sharded
    /// engine's window-alignment hook. A sequential engine opens each
    /// window at its own first pending order's publish time; a shard must
    /// instead open at the *global* window start (another shard's order may
    /// have opened it), or its hold would close later than the sequential
    /// engine's and decision epochs would drift. No-op under instant
    /// policies: publish groups are self-aligning (every member shares one
    /// timestamp).
    ///
    /// # Panics
    ///
    /// Panics if a window is already open (close it with
    /// [`StreamEvent::EpochTick`] first), if the clock has passed `at`, or
    /// if the batch window is negative.
    pub fn open_window(&mut self, at: Timestamp, policy: &StreamPolicy<'_>) {
        if let StreamPolicy::Batched { window, .. } = policy {
            assert!(
                window.is_non_negative(),
                "batch window must be non-negative"
            );
            assert_eq!(
                self.hold,
                Hold::Empty,
                "window anchored while another is open"
            );
            if let Some(clock) = self.clock {
                assert!(
                    at >= clock,
                    "window anchored at {at} behind the clock {clock}"
                );
            }
            self.clock = Some(at);
            self.hold = Hold::Window(at + *window);
        }
    }

    /// Proactively retires every driver whose shift provably cannot matter
    /// again and garbage-collects their resident state — the serve
    /// daemon's day-boundary reset. Same lossless retirement proof as the
    /// threshold-triggered compaction in the flush path (decisions and
    /// metrics are byte-identical with or without this call); only the
    /// high-water resident-state diagnostics can differ. No-op when
    /// nothing is provably expired yet.
    pub fn compact_now(&mut self, policy: &StreamPolicy<'_>) {
        let Some(floor) = self.pending.first().map(|t| t.publish_time).or(self.clock) else {
            return;
        };
        while let Some(&Reverse((end, d))) = self.expiry.peek() {
            if Timestamp::from_secs(end) < floor {
                if self.engine.expire(&mut self.states, d) {
                    self.expired_total += 1;
                }
                self.expiry.pop();
            } else {
                break;
            }
        }
        self.compact(matches!(policy, StreamPolicy::Batched { .. }));
    }

    /// Orders currently held (published, undecided), for the sharding
    /// validator's re-checks at window boundaries.
    pub(crate) fn pending_tasks(&self) -> &[Task] {
        &self.pending
    }

    /// A resident driver who could still *interact* with `task`: reach its
    /// pickup within the publish→deadline lead (the loosest feasibility
    /// radius — she departs no earlier than publication), which is also
    /// exactly the radius inside which she could raise the task's
    /// early-flush epoch above its `publish_time` floor. `None` proves the
    /// task is independent of every driver this engine owns — the
    /// region-sharding proof obligation (`shard.rs`), the streaming mirror
    /// of `disjoint_components`. Scans every resident driver, expired
    /// included (expired drivers still count for `latest_decision`);
    /// compacted ghosts report the sentinel `DriverId(u32::MAX)`.
    pub(crate) fn interaction_with(&self, task: &Task) -> Option<DriverId> {
        let budget = task.pickup_deadline - task.publish_time + TimeDelta::from_secs(1);
        for (slot, &loc) in self.states.locations().iter().enumerate() {
            if self.speed.travel_time(loc, task.origin) <= budget {
                return Some(self.ids[slot]);
            }
        }
        for &loc in self.engine.ghost_locations() {
            if self.speed.travel_time(loc, task.origin) <= budget {
                return Some(DriverId::new(u32::MAX));
            }
        }
        None
    }

    /// Garbage-collects every expired driver's resident state. `keep_ghosts`
    /// (batched mode) leaves a frozen location per removed driver so
    /// `latest_decision` epochs stay byte-identical to a materialized
    /// replay; instant mode drops them entirely.
    fn compact(&mut self, keep_ghosts: bool) {
        let remap = self.engine.compact(&mut self.states, keep_ghosts);
        let removed = remap.iter().filter(|r| r.is_none()).count();
        if removed == 0 {
            return;
        }
        self.compacted += removed;
        let mut drivers = Vec::with_capacity(self.drivers.len() - removed);
        let mut ids = Vec::with_capacity(self.ids.len() - removed);
        for (old, r) in remap.iter().enumerate() {
            if r.is_some() {
                drivers.push(self.drivers[old]);
                ids.push(self.ids[old]);
            }
        }
        self.drivers = drivers;
        self.ids = ids;
        for slot in &mut self.slots {
            *slot = slot.and_then(|s| remap[s]);
        }
        let entries: Vec<Reverse<(i64, usize)>> = std::mem::take(&mut self.expiry).into_vec();
        for Reverse((end, old)) in entries {
            if let Some(new) = remap[old] {
                self.expiry.push(Reverse((end, new)));
            }
        }
    }

    /// Decides the currently held group/window.
    fn flush(&mut self, policy: &mut StreamPolicy<'_>, sink: &mut dyn StreamSink) {
        let hold = std::mem::replace(&mut self.hold, Hold::Empty);
        if self.pending.is_empty() {
            return;
        }
        // Retire drivers whose shift ended before any held (or future)
        // order was even published — they fail the return-home check for
        // everything from here on, so skipping them cannot change results.
        let window_start = self.pending[0].publish_time;
        while let Some(&Reverse((end, d))) = self.expiry.peek() {
            if Timestamp::from_secs(end) < window_start {
                if self.engine.expire(&mut self.states, d) {
                    self.expired_total += 1;
                }
                self.expiry.pop();
            } else {
                break;
            }
        }

        // Trade the held group into the decide buffer — both vectors keep
        // their capacity across the whole replay.
        std::mem::swap(&mut self.pending, &mut self.deciding);
        match (hold, &mut *policy) {
            (Hold::Instant(at), StreamPolicy::Instant(choose)) => {
                // Same-timestamp orders decide in task-id order, making
                // intra-timestamp delivery order irrelevant.
                self.deciding.sort_by_key(|t| t.id.index());
                for task in &self.deciding {
                    match dispatch_instant(
                        &mut self.engine,
                        &self.drivers,
                        &mut self.states,
                        self.speed,
                        task,
                        task.publish_time,
                        &mut **choose,
                        &mut self.cand_scratch,
                    ) {
                        Some(mut event) => {
                            // Events name drivers by their *announced* id;
                            // internal slots may have compacted since.
                            event.driver = self.ids[event.driver.index()];
                            sink.dispatched(task, &event);
                            self.served += 1;
                        }
                        None => {
                            sink.rejected(task, task.publish_time);
                            self.rejected += 1;
                        }
                    }
                }
                self.decided_through = Some(at);
            }
            (Hold::Window(end), StreamPolicy::Batched { matcher, .. }) => {
                let mut served = 0usize;
                let mut rejected = 0usize;
                let ids = &self.ids;
                process_window(
                    &mut self.engine,
                    &self.drivers,
                    &mut self.states,
                    self.speed,
                    &self.deciding,
                    end,
                    &mut **matcher,
                    &mut self.win_scratch,
                    &mut |task, at, decision| match decision {
                        Some(mut event) => {
                            event.driver = ids[event.driver.index()];
                            sink.dispatched(task, &event);
                            served += 1;
                        }
                        None => {
                            sink.rejected(task, at);
                            rejected += 1;
                        }
                    },
                );
                self.served += served;
                self.rejected += rejected;
                self.decided_through = Some(end);
            }
            (held, _) => panic!("policy kind changed mid-stream while holding {held:?}"),
        }
        self.deciding.clear();
        // Decisions are now final through `decided_through` (both arms
        // just set it) — announce the boundary before any compaction, so
        // sinks observe state transitions in stream order.
        if let Some(end) = self.decided_through {
            sink.window_closed(end);
        }
        // Flagged-but-resident drivers, without the O(residents) flag scan
        // (`expire` counts transitions, `compact` counts removals) — flush
        // runs once per publish group, so this is hot-path arithmetic.
        if self.expired_total - self.compacted >= self.compact_threshold {
            self.compact(matches!(policy, StreamPolicy::Batched { .. }));
        }
    }
}

/// Replays a whole event stream through `policy` into `sink` — the
/// one-call form of [`StreamEngine`]. Memory stays
/// `O(active tasks + drivers)` no matter how long `events` runs; see
/// [`StreamSummary::peak_resident`] for the realised high-water mark.
///
/// # Panics
///
/// Panics when the stream violates the ordering contract (see
/// [`StreamEngine::push`]).
pub fn replay_stream<I>(
    speed: SpeedModel,
    events: I,
    policy: &mut StreamPolicy<'_>,
    options: StreamOptions,
    sink: &mut dyn StreamSink,
) -> StreamSummary
where
    I: IntoIterator<Item = StreamEvent>,
{
    let mut engine = StreamEngine::new(speed, options);
    for event in events {
        engine.push(event, policy, sink);
    }
    engine.finish(policy, sink)
}

/// The event stream of a materialized market: every driver announced up
/// front (always a valid announcement order), then every task in publish
/// order, both re-labelled positionally. Feeding this to [`replay_stream`]
/// reproduces the corresponding materialized engine byte-for-byte — the
/// bridge the oracle tests (and any caller migrating to streaming) use.
#[must_use]
pub fn market_events(market: &Market) -> Vec<StreamEvent> {
    let mut events: Vec<StreamEvent> = market
        .drivers()
        .iter()
        .enumerate()
        .map(|(n, d)| {
            StreamEvent::DriverOnline(Driver {
                id: DriverId::new(n as u32),
                ..*d
            })
        })
        .collect();
    let mut order: Vec<usize> = (0..market.num_tasks()).collect();
    order.sort_by_key(|&t| (market.tasks()[t].publish_time, t));
    events.extend(order.into_iter().map(|t| {
        StreamEvent::TaskPublished(Task {
            id: TaskId::new(t as u32),
            ..market.tasks()[t]
        })
    }));
    events
}

/// A [`StreamSink`] that collects everything into a full
/// [`SimulationResult`] — `O(trace)` memory by definition, so this is for
/// the oracle tests and small runs, not for million-task replays (use an
/// aggregating sink like `rideshare-metrics`'s `StreamMetrics` there).
#[derive(Clone, Debug, Default)]
pub struct CollectingSink {
    routes: Vec<DriverRoute>,
    dispatch: Vec<Option<DriverId>>,
    events: Vec<DispatchEvent>,
    served: usize,
    rejected: usize,
}

impl CollectingSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reserve_task(&mut self, idx: usize) {
        if self.dispatch.len() <= idx {
            self.dispatch.resize(idx + 1, None);
        }
    }

    /// The collected [`SimulationResult`], shaped exactly like the
    /// materialized engines' output (validate with
    /// [`crate::validate_online_result`]).
    #[must_use]
    pub fn into_result(self) -> SimulationResult {
        SimulationResult {
            assignment: Assignment::from_routes(self.routes),
            served: self.served,
            rejected: self.rejected,
            dispatch: self.dispatch,
            events: self.events,
        }
    }
}

impl StreamSink for CollectingSink {
    fn driver_online(&mut self, _driver: &Driver) {
        self.routes.push(DriverRoute::default());
    }

    fn dispatched(&mut self, task: &Task, event: &DispatchEvent) {
        self.reserve_task(task.id.index());
        self.dispatch[task.id.index()] = Some(event.driver);
        self.routes[event.driver.index()].tasks.push(event.task);
        self.events.push(*event);
        self.served += 1;
    }

    fn rejected(&mut self, task: &Task, _decision_time: Timestamp) {
        self.reserve_task(task.id.index());
        self.rejected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchOptions, GreedyPairMatcher, MatcherKind, OptimalAssignmentMatcher};
    use crate::policy::{MaxMargin, NearestDriver};
    use crate::simulator::{SimulationOptions, Simulator};
    use crate::validate::validate_online_result;
    use rideshare_core::{Market, MarketBuildOptions};
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    fn assert_same(streamed: &SimulationResult, materialized: &SimulationResult) {
        assert_eq!(streamed.dispatch, materialized.dispatch);
        assert_eq!(streamed.events, materialized.events);
        assert_eq!(streamed.served, materialized.served);
        assert_eq!(streamed.rejected, materialized.rejected);
        assert_eq!(
            streamed.assignment.routes(),
            materialized.assignment.routes()
        );
    }

    #[test]
    fn instant_stream_matches_simulator() {
        let m = market(81, 150, 20);
        for use_grid in [false, true] {
            let mut sink = CollectingSink::new();
            let options = if use_grid {
                StreamOptions::default().grid(rideshare_geo::porto::bounding_box())
            } else {
                StreamOptions::default()
            };
            let summary = replay_stream(
                m.speed(),
                market_events(&m),
                &mut StreamPolicy::Instant(&mut MaxMargin::new()),
                options,
                &mut sink,
            );
            let streamed = sink.into_result();
            let materialized =
                Simulator::new(&m).run(&mut MaxMargin::new(), SimulationOptions::default());
            assert_same(&streamed, &materialized);
            validate_online_result(&m, &streamed).unwrap();
            assert_eq!(summary.tasks, m.num_tasks());
            assert_eq!(summary.served + summary.rejected, summary.tasks);
        }
    }

    #[test]
    fn instant_stream_matches_seeded_nearest() {
        let m = market(82, 100, 12);
        let mut sink = CollectingSink::new();
        replay_stream(
            m.speed(),
            market_events(&m),
            &mut StreamPolicy::Instant(&mut NearestDriver::with_seed(7)),
            StreamOptions::default(),
            &mut sink,
        );
        let materialized = Simulator::new(&m).run(
            &mut NearestDriver::with_seed(7),
            SimulationOptions::default(),
        );
        assert_same(&sink.into_result(), &materialized);
    }

    #[test]
    fn batched_stream_matches_batch_engine() {
        let m = market(83, 120, 18);
        for mins in [0i64, 2, 10] {
            for optimal in [false, true] {
                let window = TimeDelta::from_mins(mins);
                let mut sink = CollectingSink::new();
                let mut greedy = GreedyPairMatcher;
                let mut opt = OptimalAssignmentMatcher;
                let matcher: &mut dyn BatchMatcher = if optimal { &mut opt } else { &mut greedy };
                replay_stream(
                    m.speed(),
                    market_events(&m),
                    &mut StreamPolicy::Batched { window, matcher },
                    StreamOptions::default(),
                    &mut sink,
                );
                let kind = if optimal {
                    MatcherKind::Optimal
                } else {
                    MatcherKind::Greedy
                };
                let materialized = crate::batch::run_batched_with(
                    &m,
                    BatchOptions::with_window(window).matcher(kind),
                );
                assert_same(&sink.into_result(), &materialized);
            }
        }
    }

    #[test]
    fn epoch_ticks_flush_windows_without_changing_results() {
        let m = market(84, 90, 10);
        let window = TimeDelta::from_mins(5);
        // Interleave hourly clock ticks into the stream.
        let mut events = market_events(&m);
        let mut ticked = Vec::new();
        let mut next_tick = Timestamp::from_hours(1);
        for e in events.drain(..) {
            if let Some(at) = e.timestamp() {
                while next_tick <= at {
                    ticked.push(StreamEvent::EpochTick(next_tick));
                    next_tick += TimeDelta::from_hours(1);
                }
            }
            ticked.push(e);
        }
        ticked.push(StreamEvent::EpochTick(Timestamp::from_hours(30)));

        let mut sink = CollectingSink::new();
        let mut matcher = GreedyPairMatcher;
        replay_stream(
            m.speed(),
            ticked,
            &mut StreamPolicy::Batched {
                window,
                matcher: &mut matcher,
            },
            StreamOptions::default(),
            &mut sink,
        );
        let materialized = crate::batch::run_batched(&m, window);
        assert_same(&sink.into_result(), &materialized);
    }

    #[test]
    fn held_tasks_stay_bounded() {
        let m = market(85, 400, 25);
        let mut sink = CollectingSink::new();
        let mut matcher = GreedyPairMatcher;
        let summary = replay_stream(
            m.speed(),
            market_events(&m),
            &mut StreamPolicy::Batched {
                window: TimeDelta::from_mins(3),
                matcher: &mut matcher,
            },
            StreamOptions::default(),
            &mut sink,
        );
        // Resident state is the held window + drivers, far below the trace.
        assert!(summary.peak_held_tasks > 0);
        assert!(
            summary.peak_held_tasks < m.num_tasks() / 4,
            "peak {} for {} tasks",
            summary.peak_held_tasks,
            m.num_tasks()
        );
        assert_eq!(summary.peak_resident(), summary.peak_held_tasks + 25);
    }

    #[test]
    fn driver_offline_and_expiry_change_nothing() {
        let m = market(86, 120, 20);
        // Interleave DriverOffline hints after each driver's shift end.
        let mut events = Vec::new();
        let mut offline: Vec<(Timestamp, DriverId)> =
            m.drivers().iter().map(|d| (d.shift_end, d.id)).collect();
        offline.sort_by_key(|&(t, id)| (t, id.index()));
        let mut oi = 0usize;
        for e in market_events(&m) {
            if let Some(at) = e.timestamp() {
                while oi < offline.len() && offline[oi].0 < at {
                    events.push(StreamEvent::DriverOffline(offline[oi].1));
                    oi += 1;
                }
            }
            events.push(e);
        }
        let mut sink = CollectingSink::new();
        let summary = replay_stream(
            m.speed(),
            events,
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
        let materialized =
            Simulator::new(&m).run(&mut MaxMargin::new(), SimulationOptions::default());
        assert_same(&sink.into_result(), &materialized);
        assert!(summary.expired_drivers > 0, "no shift ended mid-stream");
    }

    #[test]
    fn aggressive_compaction_changes_nothing_instant() {
        // Compact after every single expiry: resident drivers shrink, the
        // replay stays byte-identical to the materialized simulator, and
        // events still name drivers by their announced ids.
        let m = market(89, 200, 30);
        for use_grid in [false, true] {
            let mut options = StreamOptions::default().compaction(1);
            if use_grid {
                options = options.grid(rideshare_geo::porto::bounding_box());
            }
            let mut sink = CollectingSink::new();
            let summary = replay_stream(
                m.speed(),
                market_events(&m),
                &mut StreamPolicy::Instant(&mut MaxMargin::new()),
                options,
                &mut sink,
            );
            let materialized =
                Simulator::new(&m).run(&mut MaxMargin::new(), SimulationOptions::default());
            assert_same(&sink.into_result(), &materialized);
            assert!(
                summary.compacted_drivers > 0,
                "no shift ended mid-stream (grid={use_grid})"
            );
            assert!(summary.compacted_drivers <= summary.expired_drivers);
        }
    }

    #[test]
    fn aggressive_compaction_changes_nothing_batched() {
        // Batched mode: ghosts must keep every early-flush epoch (computed
        // by `latest_decision` over *all* drivers, expired included) equal
        // to the materialized batch engine's — the parity the candidate
        // engine's ghost test isolates, exercised here end-to-end.
        let m = market(90, 200, 30);
        for mins in [2i64, 10] {
            let window = TimeDelta::from_mins(mins);
            let mut sink = CollectingSink::new();
            let mut matcher = GreedyPairMatcher;
            let summary = replay_stream(
                m.speed(),
                market_events(&m),
                &mut StreamPolicy::Batched {
                    window,
                    matcher: &mut matcher,
                },
                StreamOptions::default().compaction(1),
                &mut sink,
            );
            let materialized = crate::batch::run_batched(&m, window);
            assert_same(&sink.into_result(), &materialized);
            assert!(summary.compacted_drivers > 0, "no compaction at W={mins}m");
        }
    }

    #[test]
    fn compaction_shrinks_resident_state() {
        let m = market(95, 150, 25);
        let mut engine = StreamEngine::new(m.speed(), StreamOptions::default().compaction(1));
        let mut mm = MaxMargin::new();
        let mut policy = StreamPolicy::Instant(&mut mm);
        let mut sink = CollectingSink::new();
        for e in market_events(&m) {
            engine.push(e, &mut policy, &mut sink);
        }
        assert_eq!(engine.driver_count(), 25);
        assert!(
            engine.resident_drivers() < 25,
            "resident {} of 25 — nothing was freed",
            engine.resident_drivers()
        );
        let summary = engine.finish(&mut policy, &mut sink);
        assert_eq!(
            summary.drivers, 25,
            "announced count is never compacted away"
        );
        assert!(summary.compacted_drivers > 0);
        assert!(summary.expired_drivers >= summary.compacted_drivers);
    }

    #[test]
    #[should_panic(expected = "stream went backwards")]
    fn out_of_order_publish_rejected() {
        let m = market(87, 30, 5);
        let mut events = market_events(&m);
        // Swap two task events across different timestamps.
        let tasks: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, StreamEvent::TaskPublished(_)))
            .map(|(i, _)| i)
            .collect();
        events.swap(tasks[0], tasks[tasks.len() - 1]);
        let mut sink = CollectingSink::new();
        let _ = replay_stream(
            m.speed(),
            events,
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_driver_ids_rejected() {
        let m = market(88, 5, 2);
        let mut events = market_events(&m);
        if let StreamEvent::DriverOnline(d) = &mut events[0] {
            d.id = DriverId::new(5);
        }
        let mut sink = CollectingSink::new();
        let _ = replay_stream(
            m.speed(),
            events,
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
    }

    #[test]
    fn compaction_zero_clamps_to_one() {
        // The builder stores the clamped value, so the option reads back
        // as what the engine runs with; `0` never means "every flush".
        assert_eq!(StreamOptions::default().compaction(0).compact_threshold, 1);
        assert_eq!(StreamOptions::default().compaction(1).compact_threshold, 1);
        assert_eq!(StreamOptions::default().compaction(9).compact_threshold, 9);
        assert_eq!(
            StreamOptions::default().no_compaction().compact_threshold,
            usize::MAX,
            "disabling is the MAX sentinel, not 0"
        );

        // A hand-built 0 (the field is public) behaves exactly like 1 —
        // same decisions, same compaction count — because the engine
        // applies the same clamp defensively.
        let m = market(83, 200, 25);
        let run = |threshold: usize| {
            let mut sink = CollectingSink::new();
            let options = StreamOptions {
                grid_bbox: None,
                compact_threshold: threshold,
            };
            let summary = replay_stream(
                m.speed(),
                market_events(&m),
                &mut StreamPolicy::Instant(&mut MaxMargin::new()),
                options,
                &mut sink,
            );
            (summary, sink.into_result())
        };
        let (zero_summary, zero) = run(0);
        let (one_summary, one) = run(1);
        assert_same(&zero, &one);
        assert_eq!(
            zero_summary.compacted_drivers,
            one_summary.compacted_drivers
        );
        assert_eq!(zero_summary.expired_drivers, one_summary.expired_drivers);
    }
}
