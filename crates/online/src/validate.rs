//! Feasibility validation under actual (simulated) timing.
//!
//! The offline task map chains tasks using the *estimated* completion
//! deadline `t̄⁺ₘ`; online, a driver who finishes early may legally take a
//! follow-up task the offline map has no arc for ("when the task m finishes
//! before t̄⁺ₘ, we use the real finish time", §III-B). This validator
//! replays each route with real timing, which is the correct feasibility
//! notion for online results.

use rideshare_core::{Assignment, Market};
use rideshare_types::{MarketError, Result};

/// Validates an online assignment by replaying every driver's route with
/// actual arrival/finish times.
///
/// Checks, per driver:
///
/// - the route departs no earlier than the shift start and each pickup is
///   reached by its deadline (with service starting on arrival),
/// - consecutive tasks are reachable from the *real* finish times,
/// - the driver reaches her own destination (conservatively from each
///   task's completion deadline) before her shift ends,
/// - no task is served twice across drivers (5a).
///
/// # Errors
///
/// Returns [`MarketError::InfeasibleAssignment`] describing the first
/// violated condition.
pub fn validate_online(market: &Market, assignment: &Assignment) -> Result<()> {
    if assignment.routes().len() != market.num_drivers() {
        return Err(MarketError::InfeasibleAssignment {
            reason: format!(
                "{} routes for {} drivers",
                assignment.routes().len(),
                market.num_drivers()
            ),
        });
    }
    let speed = market.speed();
    let mut seen = vec![false; market.num_tasks()];
    for (n, route) in assignment.routes().iter().enumerate() {
        let driver = &market.drivers()[n];
        let mut loc = driver.source;
        let mut free_at = driver.shift_start;
        for t in &route.tasks {
            let m = t.index();
            if m >= market.num_tasks() {
                return Err(MarketError::UnknownTask(*t));
            }
            if seen[m] {
                return Err(MarketError::InfeasibleAssignment {
                    reason: format!("(5a) {t} served twice"),
                });
            }
            seen[m] = true;
            let task = &market.tasks()[m];
            let depart = free_at.max(task.publish_time);
            let arrival = depart + speed.travel_time(loc, task.origin);
            if arrival > task.pickup_deadline {
                return Err(MarketError::InfeasibleAssignment {
                    reason: format!(
                        "driver#{n} reaches {t} at {arrival}, after deadline {}",
                        task.pickup_deadline
                    ),
                });
            }
            free_at = arrival + task.duration;
            loc = task.destination;
            // The platform promised the customer completion by t̄⁺ₘ and the
            // driver return-feasibility is judged against that promise.
            let back = speed.travel_time(task.destination, driver.destination);
            if task.completion_deadline + back > driver.shift_end {
                return Err(MarketError::InfeasibleAssignment {
                    reason: format!("driver#{n} cannot reach home after {t}"),
                });
            }
        }
        // Final leg home from the actual finish time.
        let home = free_at + speed.travel_time(loc, driver.destination);
        if home > driver.shift_end {
            return Err(MarketError::InfeasibleAssignment {
                reason: format!("driver#{n} arrives home at {home}, after shift end"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::{Driver, Market, Task};
    use rideshare_geo::{GeoPoint, SpeedModel};
    use rideshare_trace::DriverModel;
    use rideshare_types::{DriverId, Money, TaskId, TimeDelta, Timestamp};

    fn pt(km_east: f64) -> GeoPoint {
        GeoPoint::new(41.15, -8.61).offset_km(0.0, km_east)
    }

    fn task(id: u32, at: f64, publish: i64, pickup: i64, completion: i64, dur: i64) -> Task {
        Task {
            id: TaskId::new(id),
            publish_time: Timestamp::from_secs(publish),
            origin: pt(at),
            destination: pt(at),
            pickup_deadline: Timestamp::from_secs(pickup),
            completion_deadline: Timestamp::from_secs(completion),
            duration: TimeDelta::from_secs(dur),
            price: Money::new(5.0),
            valuation: Money::new(6.0),
            service_cost: Money::ZERO,
        }
    }

    fn driver(start: i64, end: i64) -> Driver {
        Driver {
            id: DriverId::new(0),
            source: pt(0.0),
            destination: pt(0.0),
            shift_start: Timestamp::from_secs(start),
            shift_end: Timestamp::from_secs(end),
            model: DriverModel::HomeWorkHome,
        }
    }

    fn speed() -> SpeedModel {
        SpeedModel::new(60.0, 1.0, 0.1)
    }

    #[test]
    fn early_finish_chain_valid_online_but_not_offline() {
        // Task 0: long estimated window (t̄⁺ = 4000) but short actual
        // duration (600 s). Task 1 starts at 2000: offline arc 0→1 needs
        // t̄⁻₁ ≥ t̄⁺₀ — absent; online the driver finishes at ~1600 and
        // makes it easily.
        let t0 = task(0, 1.0, 0, 1000, 4000, 600);
        let t1 = task(1, 1.0, 900, 2000, 2600, 300);
        let market = Market::new(vec![driver(0, 10_000)], vec![t0, t1], speed(), None);
        assert!(
            !market.has_chain_edge(0, 1),
            "offline map must lack the arc"
        );
        let mut a = rideshare_core::Assignment::empty(1);
        a.set_route(DriverId::new(0), vec![TaskId::new(0), TaskId::new(1)]);
        assert!(a.validate(&market).is_err(), "offline validation rejects");
        validate_online(&market, &a).expect("online validation accepts");
    }

    #[test]
    fn missed_pickup_rejected() {
        // Pickup 10 km away with a 5-minute budget at 60 km/h.
        let t0 = task(0, 10.0, 0, 300, 1200, 60);
        let market = Market::new(vec![driver(0, 10_000)], vec![t0], speed(), None);
        let mut a = rideshare_core::Assignment::empty(1);
        a.set_route(DriverId::new(0), vec![TaskId::new(0)]);
        let err = validate_online(&market, &a).unwrap_err();
        assert!(err.to_string().contains("after deadline"), "{err}");
    }

    #[test]
    fn shift_end_violation_rejected() {
        let t0 = task(0, 1.0, 0, 500, 9_500, 60);
        // Shift ends before the completion deadline + return.
        let market = Market::new(vec![driver(0, 5_000)], vec![t0], speed(), None);
        let mut a = rideshare_core::Assignment::empty(1);
        a.set_route(DriverId::new(0), vec![TaskId::new(0)]);
        assert!(validate_online(&market, &a).is_err());
    }

    #[test]
    fn duplicate_task_rejected() {
        let t0 = task(0, 1.0, 0, 500, 1500, 60);
        let d0 = driver(0, 10_000);
        let d1 = Driver {
            id: DriverId::new(1),
            ..d0
        };
        let market = Market::new(vec![d0, d1], vec![t0], speed(), None);
        let mut a = rideshare_core::Assignment::empty(2);
        a.push_task(DriverId::new(0), TaskId::new(0));
        a.push_task(DriverId::new(1), TaskId::new(0));
        let err = validate_online(&market, &a).unwrap_err();
        assert!(err.to_string().contains("(5a)"), "{err}");
    }

    #[test]
    fn empty_assignment_always_valid() {
        let market = Market::new(vec![driver(0, 100)], vec![], speed(), None);
        validate_online(&market, &rideshare_core::Assignment::empty(1)).unwrap();
    }
}
