//! Feasibility validation under actual (simulated) timing.
//!
//! The offline task map chains tasks using the *estimated* completion
//! deadline `t̄⁺ₘ`; online, a driver who finishes early may legally take a
//! follow-up task the offline map has no arc for ("when the task m finishes
//! before t̄⁺ₘ, we use the real finish time", §III-B). This validator
//! replays each route with real timing, which is the correct feasibility
//! notion for online results.

use rideshare_core::{Assignment, Market};
use rideshare_types::{MarketError, Result};

use crate::simulator::{DispatchEvent, SimulationResult};

/// Validates an online assignment by replaying every driver's route with
/// actual arrival/finish times.
///
/// Checks, per driver:
///
/// - the route departs no earlier than the shift start and each pickup is
///   reached by its deadline (with service starting on arrival),
/// - consecutive tasks are reachable from the *real* finish times,
/// - the driver reaches her own destination (conservatively from each
///   task's completion deadline) before her shift ends,
/// - no task is served twice across drivers (5a).
///
/// # Errors
///
/// Returns [`MarketError::InfeasibleAssignment`] describing the first
/// violated condition.
pub fn validate_online(market: &Market, assignment: &Assignment) -> Result<()> {
    if assignment.routes().len() != market.num_drivers() {
        return Err(MarketError::InfeasibleAssignment {
            reason: format!(
                "{} routes for {} drivers",
                assignment.routes().len(),
                market.num_drivers()
            ),
        });
    }
    let speed = market.speed();
    let mut seen = vec![false; market.num_tasks()];
    for (n, route) in assignment.routes().iter().enumerate() {
        let driver = &market.drivers()[n];
        let mut loc = driver.source;
        let mut free_at = driver.shift_start;
        for t in &route.tasks {
            let m = t.index();
            if m >= market.num_tasks() {
                return Err(MarketError::UnknownTask(*t));
            }
            if seen[m] {
                return Err(MarketError::InfeasibleAssignment {
                    reason: format!("(5a) {t} served twice"),
                });
            }
            seen[m] = true;
            let task = &market.tasks()[m];
            let depart = free_at.max(task.publish_time);
            let arrival = depart + speed.travel_time(loc, task.origin);
            if arrival > task.pickup_deadline {
                return Err(MarketError::InfeasibleAssignment {
                    reason: format!(
                        "driver#{n} reaches {t} at {arrival}, after deadline {}",
                        task.pickup_deadline
                    ),
                });
            }
            free_at = arrival + task.duration;
            loc = task.destination;
            // The platform promised the customer completion by t̄⁺ₘ and the
            // driver return-feasibility is judged against that promise.
            let back = speed.travel_time(task.destination, driver.destination);
            if task.completion_deadline + back > driver.shift_end {
                return Err(MarketError::InfeasibleAssignment {
                    reason: format!("driver#{n} cannot reach home after {t}"),
                });
            }
        }
        // Final leg home from the actual finish time.
        let home = free_at + speed.travel_time(loc, driver.destination);
        if home > driver.shift_end {
            return Err(MarketError::InfeasibleAssignment {
                reason: format!("driver#{n} arrives home at {home}, after shift end"),
            });
        }
    }
    Ok(())
}

/// Validates a full [`SimulationResult`]: route feasibility (as
/// [`validate_online`]) **plus dispatch causality** — no served task may
/// have a departure earlier than the instant its dispatch decision could
/// have been made.
///
/// The causality checks, per dispatched event:
///
/// - the recorded decision time is no earlier than the task's publication
///   (a decision cannot precede the order it decides),
/// - replaying the driver's route with decision-time-correct departures
///   (`depart = max(free, decision_time)`) reproduces the recorded arrival
///   exactly — a recorded arrival earlier than that replay means the
///   driver "departed" before the decision existed (the clairvoyance bug
///   this validator was built to catch),
/// - the recorded wait is consistent (`arrival − publish`) and the arrival
///   meets the pickup deadline,
/// - served/rejected/dispatch/event accounting all agree.
///
/// # Errors
///
/// Returns [`MarketError::InfeasibleAssignment`] describing the first
/// violated condition.
pub fn validate_online_result(market: &Market, result: &SimulationResult) -> Result<()> {
    validate_online(market, &result.assignment)?;
    let infeasible = |reason: String| MarketError::InfeasibleAssignment { reason };

    if result.served + result.rejected != market.num_tasks() {
        return Err(infeasible(format!(
            "{} served + {} rejected != {} tasks",
            result.served,
            result.rejected,
            market.num_tasks()
        )));
    }
    if result.events.len() != result.served {
        return Err(infeasible(format!(
            "{} events for {} served tasks",
            result.events.len(),
            result.served
        )));
    }
    let dispatched = result.dispatch.iter().filter(|d| d.is_some()).count();
    if dispatched != result.served {
        return Err(infeasible(format!(
            "{dispatched} dispatch entries for {} served tasks",
            result.served
        )));
    }

    // Index events by task; each served task carries exactly one event that
    // agrees with the dispatch vector.
    let mut by_task: Vec<Option<&DispatchEvent>> = vec![None; market.num_tasks()];
    for e in &result.events {
        let m = e.task.index();
        if m >= market.num_tasks() {
            return Err(MarketError::UnknownTask(e.task));
        }
        if by_task[m].is_some() {
            return Err(infeasible(format!("duplicate event for {}", e.task)));
        }
        if result.dispatch[m] != Some(e.driver) {
            return Err(infeasible(format!(
                "event for {} names {}, dispatch vector disagrees",
                e.task, e.driver
            )));
        }
        by_task[m] = Some(e);
    }

    let speed = market.speed();
    for (n, route) in result.assignment.routes().iter().enumerate() {
        let driver = &market.drivers()[n];
        let mut loc = driver.source;
        let mut free_at = driver.shift_start;
        for t in &route.tasks {
            let m = t.index();
            let task = &market.tasks()[m];
            let Some(e) = by_task[m] else {
                return Err(infeasible(format!("served task {t} has no event")));
            };
            if e.driver.index() != n {
                return Err(infeasible(format!(
                    "{t} sits on driver#{n}'s route but its event names {}",
                    e.driver
                )));
            }
            if e.decision_time < task.publish_time {
                return Err(infeasible(format!(
                    "{t} decided at {}, before it was published at {}",
                    e.decision_time, task.publish_time
                )));
            }
            // Causality: the driver departs no earlier than the decision.
            let depart = free_at.max(e.decision_time);
            let arrival = depart + speed.travel_time(loc, task.origin);
            if e.arrival != arrival {
                return Err(infeasible(format!(
                    "driver#{n} records arrival {} at {t}, but departing no \
                     earlier than the decision at {} she arrives at {arrival} \
                     (clairvoyant dispatch?)",
                    e.arrival, e.decision_time
                )));
            }
            if arrival > task.pickup_deadline {
                return Err(infeasible(format!(
                    "{t} reached at {arrival}, after deadline {}",
                    task.pickup_deadline
                )));
            }
            if e.wait != arrival - task.publish_time {
                return Err(infeasible(format!(
                    "{t} wait {} inconsistent with arrival {arrival}",
                    e.wait
                )));
            }
            free_at = arrival + task.duration;
            loc = task.destination;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::{Driver, Market, Task};
    use rideshare_geo::{GeoPoint, SpeedModel};
    use rideshare_trace::DriverModel;
    use rideshare_types::{DriverId, Money, TaskId, TimeDelta, Timestamp};

    fn pt(km_east: f64) -> GeoPoint {
        GeoPoint::new(41.15, -8.61).offset_km(0.0, km_east)
    }

    fn task(id: u32, at: f64, publish: i64, pickup: i64, completion: i64, dur: i64) -> Task {
        Task {
            id: TaskId::new(id),
            publish_time: Timestamp::from_secs(publish),
            origin: pt(at),
            destination: pt(at),
            pickup_deadline: Timestamp::from_secs(pickup),
            completion_deadline: Timestamp::from_secs(completion),
            duration: TimeDelta::from_secs(dur),
            price: Money::new(5.0),
            valuation: Money::new(6.0),
            service_cost: Money::ZERO,
        }
    }

    fn driver(start: i64, end: i64) -> Driver {
        Driver {
            id: DriverId::new(0),
            source: pt(0.0),
            destination: pt(0.0),
            shift_start: Timestamp::from_secs(start),
            shift_end: Timestamp::from_secs(end),
            model: DriverModel::HomeWorkHome,
        }
    }

    fn speed() -> SpeedModel {
        SpeedModel::new(60.0, 1.0, 0.1)
    }

    #[test]
    fn early_finish_chain_valid_online_but_not_offline() {
        // Task 0: long estimated window (t̄⁺ = 4000) but short actual
        // duration (600 s). Task 1 starts at 2000: offline arc 0→1 needs
        // t̄⁻₁ ≥ t̄⁺₀ — absent; online the driver finishes at ~1600 and
        // makes it easily.
        let t0 = task(0, 1.0, 0, 1000, 4000, 600);
        let t1 = task(1, 1.0, 900, 2000, 2600, 300);
        let market = Market::new(vec![driver(0, 10_000)], vec![t0, t1], speed(), None);
        assert!(
            !market.has_chain_edge(0, 1),
            "offline map must lack the arc"
        );
        let mut a = rideshare_core::Assignment::empty(1);
        a.set_route(DriverId::new(0), vec![TaskId::new(0), TaskId::new(1)]);
        assert!(a.validate(&market).is_err(), "offline validation rejects");
        validate_online(&market, &a).expect("online validation accepts");
    }

    #[test]
    fn missed_pickup_rejected() {
        // Pickup 10 km away with a 5-minute budget at 60 km/h.
        let t0 = task(0, 10.0, 0, 300, 1200, 60);
        let market = Market::new(vec![driver(0, 10_000)], vec![t0], speed(), None);
        let mut a = rideshare_core::Assignment::empty(1);
        a.set_route(DriverId::new(0), vec![TaskId::new(0)]);
        let err = validate_online(&market, &a).unwrap_err();
        assert!(err.to_string().contains("after deadline"), "{err}");
    }

    #[test]
    fn shift_end_violation_rejected() {
        let t0 = task(0, 1.0, 0, 500, 9_500, 60);
        // Shift ends before the completion deadline + return.
        let market = Market::new(vec![driver(0, 5_000)], vec![t0], speed(), None);
        let mut a = rideshare_core::Assignment::empty(1);
        a.set_route(DriverId::new(0), vec![TaskId::new(0)]);
        assert!(validate_online(&market, &a).is_err());
    }

    #[test]
    fn duplicate_task_rejected() {
        let t0 = task(0, 1.0, 0, 500, 1500, 60);
        let d0 = driver(0, 10_000);
        let d1 = Driver {
            id: DriverId::new(1),
            ..d0
        };
        let market = Market::new(vec![d0, d1], vec![t0], speed(), None);
        let mut a = rideshare_core::Assignment::empty(2);
        a.push_task(DriverId::new(0), TaskId::new(0));
        a.push_task(DriverId::new(1), TaskId::new(0));
        let err = validate_online(&market, &a).unwrap_err();
        assert!(err.to_string().contains("(5a)"), "{err}");
    }

    #[test]
    fn empty_assignment_always_valid() {
        let market = Market::new(vec![driver(0, 100)], vec![], speed(), None);
        validate_online(&market, &rideshare_core::Assignment::empty(1)).unwrap();
    }

    /// One driver 1 km west of a single task (60 s of travel), plus a
    /// hand-rolled result claiming the given decision/arrival times.
    fn one_task_result(decision: i64, arrival: i64) -> (Market, SimulationResult) {
        let t0 = Task {
            origin: pt(1.0),
            destination: pt(1.0),
            ..task(0, 1.0, 0, 400, 2000, 60)
        };
        let market = Market::new(vec![driver(0, 10_000)], vec![t0], speed(), None);
        let mut assignment = rideshare_core::Assignment::empty(1);
        assignment.push_task(DriverId::new(0), TaskId::new(0));
        let arrival = Timestamp::from_secs(arrival);
        let result = SimulationResult {
            assignment,
            served: 1,
            rejected: 0,
            dispatch: vec![Some(DriverId::new(0))],
            events: vec![DispatchEvent {
                task: TaskId::new(0),
                driver: DriverId::new(0),
                arrival,
                decision_time: Timestamp::from_secs(decision),
                wait: arrival - Timestamp::from_secs(0),
                deadhead_km: 1.0,
                candidates: 1,
                margin: 0.0,
            }],
        };
        (market, result)
    }

    #[test]
    fn result_validator_accepts_honest_timing() {
        // Decision at 300, 60 s of travel → arrival 360.
        let (market, result) = one_task_result(300, 360);
        validate_online_result(&market, &result).unwrap();
    }

    #[test]
    fn result_validator_rejects_clairvoyant_departure() {
        // Claimed arrival 60 means the driver departed at 0, before the
        // decision at 300 existed — the old batch engine's bug.
        let (market, result) = one_task_result(300, 60);
        let err = validate_online_result(&market, &result).unwrap_err();
        assert!(err.to_string().contains("clairvoyant"), "{err}");
    }

    #[test]
    fn result_validator_rejects_decision_before_publish() {
        let (market, result) = one_task_result(-10, 50);
        let err = validate_online_result(&market, &result).unwrap_err();
        assert!(err.to_string().contains("before it was published"), "{err}");
    }

    #[test]
    fn result_validator_rejects_route_event_driver_mismatch() {
        // The route puts task 0 on driver 0, but the event and dispatch
        // vector both claim driver 1 — three representations of "who
        // served it" must agree.
        let (market, mut result) = one_task_result(300, 360);
        result.dispatch[0] = Some(DriverId::new(1));
        result.events[0].driver = DriverId::new(1);
        let err = validate_online_result(&market, &result).unwrap_err();
        assert!(err.to_string().contains("its event names"), "{err}");
    }

    #[test]
    fn result_validator_rejects_bad_accounting() {
        let (market, mut result) = one_task_result(300, 360);
        result.rejected = 5;
        let err = validate_online_result(&market, &result).unwrap_err();
        assert!(err.to_string().contains("rejected"), "{err}");
    }
}
