//! Online dispatch: the real-time side of the market (§V).
//!
//! In the online setting "the platform and the drivers do not know the time
//! or any other detailed information about a task in advance" and must
//! respond instantly when an order is published. This crate provides:
//!
//! - [`Simulator`]: an event-driven replay of a market's order stream in
//!   publish order, maintaining each driver's projected location and
//!   availability (including the paper's early-finish rule — "if a driver
//!   finishes the task m before the estimated finish time t̄⁺ₘ, she can
//!   drive to the source of her next task"), building the candidate set of
//!   step (a) of Algs. 3–4, and dispatching through a pluggable
//!   [`DispatchPolicy`],
//! - [`NearestDriver`]: Algorithm 3 — pick the candidate with the earliest
//!   arrival at the pickup, random tie-break,
//! - [`MaxMargin`]: Algorithm 4 — pick the candidate with the largest
//!   marginal value `δₙ,ₘ` (Eq. 14),
//! - [`RandomDispatch`]: a uniform-random baseline for ablations,
//! - [`BatchEngine`]: decision-time-correct batched dispatch — orders are
//!   held for a window `W`, decided jointly at the window end (or flushed
//!   early when a pickup deadline would expire), and drivers depart no
//!   earlier than the decision; matching is pluggable via [`BatchMatcher`]
//!   ([`GreedyPairMatcher`] and the LP-backed
//!   [`OptimalAssignmentMatcher`]),
//! - [`StreamEngine`] / [`replay_stream`]: **bounded-memory streaming
//!   replay** — the same dispatch semantics driven from an ordered
//!   [`StreamEvent`] iterator instead of a materialised market, with
//!   resident state `O(active tasks + drivers)` and results flowing out
//!   through a [`StreamSink`]; byte-identical to the simulator and the
//!   batch engine on the same orders (the oracle tests pin this), with
//!   lossless garbage-collection of expired drivers
//!   (`StreamOptions::compact_threshold`),
//! - [`ShardedStreamEngine`] / [`replay_sharded`]: **region-sharded
//!   parallel streaming** — the online analogue of the §IV lossless
//!   decomposition: events route through a pluggable [`RegionPartitioner`]
//!   to N worker shards each running an unmodified [`StreamEngine`], with
//!   globally anchored batch windows, a deterministic task-id-ordered
//!   merge, and a debug-mode validator for the no-cross-shard-interaction
//!   proof obligation; byte-identical to [`replay_stream`] on legal
//!   partitions (the `shard_determinism` battery pins this),
//! - [`ServeDaemon`] / [`IngestSource`]: the **long-running dispatch
//!   daemon** — live ingestion from tailed JSONL/CSV files
//!   ([`FileSource`]), a length-prefixed TCP frame stream ([`TcpSource`]),
//!   or any in-process iterator ([`IterSource`]), with periodic metrics
//!   snapshots and day-boundary state resets on the deterministic stream
//!   clock, hostile-input hardening via typed [`IngestError`]s, and
//!   graceful drain; a drained daemon is byte-identical to
//!   [`replay_stream`] / [`replay_sharded`] over the same trace (the
//!   `serve_equivalence` battery pins this),
//! - [`validate_online`]: feasibility checking under *actual* (simulated)
//!   timing rather than the offline task-map deadlines, and
//!   [`validate_online_result`]: the same plus the dispatch-causality law
//!   (no departure may precede its dispatch decision),
//! - the offline variant of maxMargin (§V-B) via
//!   [`SimulationOptions::value_sorted`], which processes tasks in
//!   descending-price order when the whole day is known in advance.
//!
//! # Examples
//!
//! ```
//! use rideshare_core::{Market, MarketBuildOptions, Objective};
//! use rideshare_online::{MaxMargin, SimulationOptions, Simulator};
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let trace = TraceConfig::porto()
//!     .with_seed(4)
//!     .with_task_count(100)
//!     .with_driver_count(12, DriverModel::Hitchhiking)
//!     .generate();
//! let market = Market::from_trace(&trace, &MarketBuildOptions::default());
//! let sim = Simulator::new(&market);
//! let result = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
//! assert_eq!(result.served + result.rejected, market.num_tasks());
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod batch;
mod candidates;
mod ingest;
mod policy;
mod serve;
mod shard;
mod simulator;
mod stream;
mod validate;

pub use batch::{
    run_batched, run_batched_with, BatchEngine, BatchMatcher, BatchOptions, BatchRound,
    GreedyPairMatcher, MatcherKind, OptimalAssignmentMatcher,
};
pub use ingest::{
    event_to_line, event_to_wire, wire_to_event, EventGuard, FileSource, IngestError, IngestFormat,
    IngestSource, IterSource, TcpSource,
};
pub use policy::{
    Candidate, DispatchPolicy, MaxMargin, NearestDriver, RandomDispatch, WeightedScore,
};
pub use serve::{
    DayPoint, ServeConfig, ServeDaemon, ServeOutcome, ServeReport, ServeStop, SnapshotPoint,
};
pub use shard::{
    replay_sharded, BoxPartitioner, GridHashPartitioner, PolicyHolder, RegionPartitioner,
    ShardOptions, ShardPolicySpec, ShardedStreamEngine,
};
pub use simulator::{DispatchEvent, SimulationOptions, SimulationResult, Simulator};
pub use stream::{
    market_events, replay_stream, CollectingSink, StreamEngine, StreamEvent, StreamOptions,
    StreamPolicy, StreamSink, StreamSummary,
};
pub use validate::{validate_online, validate_online_result};
