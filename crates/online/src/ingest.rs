//! Pluggable event ingestion for the serve daemon.
//!
//! [`IngestSource`] is the daemon's only upstream interface: *"give me the
//! next [`StreamEvent`], a clean end-of-stream, or a typed error"*. The
//! implementations cover the three external feed shapes:
//!
//! - [`FileSource`]: JSONL or CSV event files (the `rideshare export`
//!   formats), with optional tail-follow for files still being written,
//! - [`TcpSource`]: the length-prefixed binary frame stream of
//!   [`rideshare_trace::wire`] over a socket,
//! - [`IterSource`]: any in-process iterator (the test harness's way to
//!   drive a daemon without I/O).
//!
//! A hostile or damaged feed must *never* panic the daemon: every decode
//! or ordering problem surfaces as an [`IngestError`], after which the
//! daemon drains its in-flight windows normally and reports a valid
//! partial result. The engines themselves enforce their stream contract
//! with panics (correct for trusted in-process replays); [`EventGuard`]
//! front-runs those checks at the ingestion boundary and converts each
//! would-be panic into the matching typed error.

use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rideshare_core::{Driver, Task};
use rideshare_trace::wire::{
    from_csv_line, from_json_line, to_csv_line, to_json_line, FrameDecoder, WireError, WireEvent,
    WireTask,
};
use rideshare_types::{DriverId, Money, TaskId, Timestamp};

use crate::stream::StreamEvent;

/// How long file tailing and shutdown polling sleep between checks.
const POLL: Duration = Duration::from_millis(10);

/// A typed ingestion failure. The daemon treats every variant the same
/// way — stop ingesting, drain in-flight windows, report the error beside
/// the (valid) partial result — so the distinctions exist for operators
/// and tests, not for control flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Transport-level I/O failure (socket error, unreadable file).
    Io(String),
    /// A structurally invalid binary frame (bad length prefix, unknown
    /// tag, short body).
    Frame(WireError),
    /// The byte stream ended mid-frame: the producer died or the
    /// connection dropped part-way through a write.
    Disconnected {
        /// Undecodable bytes left in the frame buffer.
        pending_bytes: usize,
    },
    /// A JSONL/CSV line failed to parse (1-based line number).
    Malformed {
        /// 1-based line number in the feed.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// An event timestamp moved backwards — the feed violates the
    /// publish-ordering contract every engine's determinism rests on.
    NonMonotonic {
        /// The stream clock before the offending event.
        prev: Timestamp,
        /// The offending event's own timestamp.
        at: Timestamp,
    },
    /// A driver announced out of dense id order.
    NonDenseDriver {
        /// The id the feed announced.
        got: u32,
        /// The id the dense sequence requires next.
        expected: u32,
    },
    /// A `DriverOffline` for a driver never announced.
    UnknownDriver {
        /// The unknown id.
        id: u32,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(msg) => write!(f, "ingest I/O failure: {msg}"),
            IngestError::Frame(e) => write!(f, "bad frame: {e}"),
            IngestError::Disconnected { pending_bytes } => write!(
                f,
                "stream ended mid-frame ({pending_bytes} undecodable byte(s) pending)"
            ),
            IngestError::Malformed { line, reason } => {
                write!(f, "malformed event at line {line}: {reason}")
            }
            IngestError::NonMonotonic { prev, at } => write!(
                f,
                "non-monotonic feed: event at {at} after the clock reached {prev}"
            ),
            IngestError::NonDenseDriver { got, expected } => write!(
                f,
                "driver announced with id {got}, expected dense id {expected}"
            ),
            IngestError::UnknownDriver { id } => {
                write!(f, "DriverOffline for unknown driver {id}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<WireError> for IngestError {
    fn from(e: WireError) -> Self {
        IngestError::Frame(e)
    }
}

/// Converts a wire event into an engine event; `None` for
/// [`WireEvent::Eos`].
#[must_use]
pub fn wire_to_event(wire: WireEvent) -> Option<StreamEvent> {
    match wire {
        WireEvent::DriverOnline(d) => Some(StreamEvent::DriverOnline(Driver {
            id: DriverId::new(d.id),
            source: d.source,
            destination: d.destination,
            shift_start: d.shift_start,
            shift_end: d.shift_end,
            model: d.model,
        })),
        WireEvent::TaskPublished(t) => Some(StreamEvent::TaskPublished(Task {
            id: TaskId::new(t.id),
            publish_time: t.publish_time,
            origin: t.origin,
            destination: t.destination,
            pickup_deadline: t.pickup_deadline,
            completion_deadline: t.completion_deadline,
            duration: t.duration,
            price: Money::new(t.price),
            valuation: Money::new(t.valuation),
            service_cost: Money::new(t.service_cost),
        })),
        WireEvent::DriverOffline(id) => Some(StreamEvent::DriverOffline(DriverId::new(id))),
        WireEvent::EpochTick(at) => Some(StreamEvent::EpochTick(Timestamp::from_secs(at))),
        WireEvent::Eos => None,
    }
}

/// Converts an engine event into its wire form (always succeeds — every
/// engine event has a wire representation; [`WireEvent::Eos`] has no
/// engine-side counterpart and is emitted by producers explicitly).
#[must_use]
pub fn event_to_wire(event: &StreamEvent) -> WireEvent {
    match event {
        StreamEvent::DriverOnline(d) => {
            WireEvent::DriverOnline(rideshare_trace::wire::WireDriver {
                id: d.id.raw(),
                source: d.source,
                destination: d.destination,
                shift_start: d.shift_start,
                shift_end: d.shift_end,
                model: d.model,
            })
        }
        StreamEvent::TaskPublished(t) => WireEvent::TaskPublished(WireTask {
            id: t.id.raw(),
            publish_time: t.publish_time,
            origin: t.origin,
            destination: t.destination,
            pickup_deadline: t.pickup_deadline,
            completion_deadline: t.completion_deadline,
            duration: t.duration,
            price: t.price.as_f64(),
            valuation: t.valuation.as_f64(),
            service_cost: t.service_cost.as_f64(),
        }),
        StreamEvent::DriverOffline(id) => WireEvent::DriverOffline(id.raw()),
        StreamEvent::EpochTick(at) => WireEvent::EpochTick(at.as_secs()),
    }
}

/// The daemon's upstream interface: a pull-based, fallible event feed.
pub trait IngestSource {
    /// The next event, `Ok(None)` on clean end-of-stream (an explicit
    /// end-of-stream marker, or end-of-transport on a frame boundary), or
    /// a typed error. After an error or `Ok(None)` the source need not be
    /// callable again.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError`] on transport or decode failure; must never
    /// panic or hang forever on hostile input (blocking for more input on
    /// an open transport is fine — that is what the daemon's shutdown
    /// flag interrupts).
    fn next_event(&mut self) -> Result<Option<StreamEvent>, IngestError>;
}

/// Line-based event file format of a [`FileSource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestFormat {
    /// One canonical JSON object per line ([`rideshare_trace::wire::to_json_line`]).
    Jsonl,
    /// Tagged CSV event rows ([`rideshare_trace::wire::to_csv_line`]).
    Csv,
}

/// A JSONL or CSV event file, optionally tailed while still being
/// written.
///
/// In follow mode only complete (newline-terminated) lines are consumed;
/// on end-of-file the source polls for growth until it sees an
/// end-of-stream marker line or the shutdown flag flips. Without follow,
/// end-of-file is a clean end of stream.
pub struct FileSource {
    reader: BufReader<std::fs::File>,
    path: PathBuf,
    format: IngestFormat,
    follow: bool,
    shutdown: Option<Arc<AtomicBool>>,
    /// Carry-over for a line whose terminating newline has not landed yet.
    partial: String,
    line_no: usize,
    done: bool,
}

impl FileSource {
    /// Opens `path` for reading in `format`.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::Io`] if the file cannot be opened.
    pub fn open(path: &Path, format: IngestFormat) -> Result<Self, IngestError> {
        let file = std::fs::File::open(path)
            .map_err(|e| IngestError::Io(format!("{}: {e}", path.display())))?;
        Ok(Self {
            reader: BufReader::new(file),
            path: path.to_path_buf(),
            format,
            follow: false,
            shutdown: None,
            partial: String::new(),
            line_no: 0,
            done: false,
        })
    }

    /// Keeps polling for new lines at end-of-file instead of stopping —
    /// the daemon's live-tail mode for a file a producer is appending to.
    #[must_use]
    pub fn follow(mut self, yes: bool) -> Self {
        self.follow = yes;
        self
    }

    /// Installs a cooperative shutdown flag checked while tailing.
    #[must_use]
    pub fn with_shutdown(mut self, flag: Arc<AtomicBool>) -> Self {
        self.shutdown = Some(flag);
        self
    }

    /// The file being read (for diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn parse(&self, line: &str) -> Result<WireEvent, WireError> {
        match self.format {
            IngestFormat::Jsonl => from_json_line(line),
            IngestFormat::Csv => from_csv_line(line),
        }
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

impl IngestSource for FileSource {
    fn next_event(&mut self) -> Result<Option<StreamEvent>, IngestError> {
        loop {
            if self.done {
                return Ok(None);
            }
            let read = self
                .reader
                .read_line(&mut self.partial)
                .map_err(|e| IngestError::Io(e.to_string()))?;
            let complete = self.partial.ends_with('\n');
            if read == 0 || !complete {
                // End of file, possibly mid-line. Tail mode waits for the
                // producer (or the shutdown flag); otherwise a complete
                // final line without its newline is still a line, and an
                // empty carry-over is a clean end of stream.
                if self.follow {
                    if self.shutdown_requested() {
                        return Ok(None);
                    }
                    // audit:allow(wall-clock): the tail-poll backoff is a documented ingestion timing edge — it paces how fast a live tail notices growth and never feeds a timestamp into dispatch (stream time comes from the events themselves).
                    std::thread::sleep(POLL);
                    continue;
                }
                if read != 0 {
                    continue; // may still grow to a newline within this call
                }
                if self.partial.is_empty() {
                    return Ok(None);
                }
            }
            self.line_no += 1;
            let line = std::mem::take(&mut self.partial);
            let line = line.trim_end_matches(['\n', '\r']);
            if line.trim().is_empty() {
                continue;
            }
            let wire = self.parse(line).map_err(|e| IngestError::Malformed {
                line: self.line_no,
                reason: e.to_string(),
            })?;
            match wire_to_event(wire) {
                Some(event) => return Ok(Some(event)),
                None => {
                    self.done = true;
                    return Ok(None);
                }
            }
        }
    }
}

/// A length-prefixed binary frame stream over TCP (the
/// [`rideshare_trace::wire`] frame format).
///
/// End-of-transport on a frame boundary is a clean end of stream (as is
/// an explicit end-of-stream frame); mid-frame disconnection surfaces as
/// [`IngestError::Disconnected`] with the number of stranded bytes.
pub struct TcpSource {
    stream: TcpStream,
    decoder: FrameDecoder,
    shutdown: Option<Arc<AtomicBool>>,
    done: bool,
}

impl TcpSource {
    /// Wraps an accepted connection.
    #[must_use]
    pub fn from_stream(stream: TcpStream) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(),
            shutdown: None,
            done: false,
        }
    }

    /// Installs a cooperative shutdown flag. Reads switch to a short
    /// timeout so the flag is polled even when the producer is idle.
    #[must_use]
    pub fn with_shutdown(mut self, flag: Arc<AtomicBool>) -> Self {
        let _ = self
            .stream
            .set_read_timeout(Some(Duration::from_millis(25)));
        self.shutdown = Some(flag);
        self
    }
}

impl IngestSource for TcpSource {
    fn next_event(&mut self) -> Result<Option<StreamEvent>, IngestError> {
        let mut buf = [0u8; 8192];
        loop {
            if self.done {
                return Ok(None);
            }
            if let Some(wire) = self.decoder.next()? {
                match wire_to_event(wire) {
                    Some(event) => return Ok(Some(event)),
                    None => {
                        self.done = true;
                        return Ok(None);
                    }
                }
            }
            if self
                .shutdown
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
            {
                return Ok(None);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.done = true;
                    let pending = self.decoder.pending_bytes();
                    if pending == 0 {
                        return Ok(None);
                    }
                    return Err(IngestError::Disconnected {
                        pending_bytes: pending,
                    });
                }
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Read timeout: loop back to poll the shutdown flag.
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(IngestError::Io(e.to_string())),
            }
        }
    }
}

/// An in-process iterator as an ingest source — the test harness's way to
/// run the daemon with zero I/O, and the adapter that makes every lazy
/// event pipeline (`TraceStream` + pricer) servable.
pub struct IterSource<I> {
    events: I,
}

impl<I> IterSource<I>
where
    I: Iterator<Item = StreamEvent>,
{
    /// Wraps `events`.
    pub fn new(events: I) -> Self {
        Self { events }
    }
}

impl<I> IngestSource for IterSource<I>
where
    I: Iterator<Item = StreamEvent>,
{
    fn next_event(&mut self) -> Result<Option<StreamEvent>, IngestError> {
        Ok(self.events.next())
    }
}

/// Front-runs the engines' stream-contract panics at the ingestion
/// boundary: timestamps must be non-decreasing, driver announcements
/// dense, offline notices known. A feed the guard admits event-by-event
/// cannot panic a [`crate::StreamEngine`] or the sharded router on
/// contract grounds — which is what lets the daemon return typed errors
/// for hostile input while the engines keep their fail-fast internals.
#[derive(Debug, Default)]
pub struct EventGuard {
    clock: Option<Timestamp>,
    drivers: u32,
}

impl EventGuard {
    /// A fresh guard (no events seen).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates the next event against everything admitted so far.
    ///
    /// # Errors
    ///
    /// Returns the typed [`IngestError`] the event would have caused an
    /// engine panic for.
    pub fn admit(&mut self, event: &StreamEvent) -> Result<(), IngestError> {
        if let Some(at) = event.timestamp() {
            if let Some(prev) = self.clock {
                if at < prev {
                    return Err(IngestError::NonMonotonic { prev, at });
                }
            }
            self.clock = Some(at);
        }
        match event {
            StreamEvent::DriverOnline(d) => {
                if d.id.raw() != self.drivers {
                    return Err(IngestError::NonDenseDriver {
                        got: d.id.raw(),
                        expected: self.drivers,
                    });
                }
                self.drivers += 1;
            }
            StreamEvent::DriverOffline(id) => {
                if id.raw() >= self.drivers {
                    return Err(IngestError::UnknownDriver { id: id.raw() });
                }
            }
            StreamEvent::TaskPublished(_) | StreamEvent::EpochTick(_) => {}
        }
        Ok(())
    }
}

/// Serialises one engine event as a line in `format` (no newline).
#[must_use]
pub fn event_to_line(event: &StreamEvent, format: IngestFormat) -> String {
    let wire = event_to_wire(event);
    match format {
        IngestFormat::Jsonl => to_json_line(&wire),
        IngestFormat::Csv => to_csv_line(&wire),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_geo::GeoPoint;
    use rideshare_trace::DriverModel;
    use rideshare_types::TimeDelta;
    use std::io::Write;

    fn driver(id: u32) -> StreamEvent {
        StreamEvent::DriverOnline(Driver {
            id: DriverId::new(id),
            source: GeoPoint::new(41.1, -8.6),
            destination: GeoPoint::new(41.2, -8.5),
            shift_start: Timestamp::from_secs(0),
            shift_end: Timestamp::from_secs(7200),
            model: DriverModel::Hitchhiking,
        })
    }

    fn task(id: u32, publish: i64) -> StreamEvent {
        StreamEvent::TaskPublished(Task {
            id: TaskId::new(id),
            publish_time: Timestamp::from_secs(publish),
            origin: GeoPoint::new(41.15, -8.61),
            destination: GeoPoint::new(41.16, -8.58),
            pickup_deadline: Timestamp::from_secs(publish + 300),
            completion_deadline: Timestamp::from_secs(publish + 1500),
            duration: TimeDelta::from_secs(600),
            price: Money::new(6.5),
            valuation: Money::new(7.25),
            service_cost: Money::new(2.0),
        })
    }

    #[test]
    fn wire_conversion_round_trips() {
        for e in [
            driver(0),
            task(0, 100),
            StreamEvent::DriverOffline(DriverId::new(0)),
            StreamEvent::EpochTick(Timestamp::from_secs(5000)),
        ] {
            let back = wire_to_event(event_to_wire(&e)).unwrap();
            assert_eq!(back, e);
        }
        assert_eq!(wire_to_event(WireEvent::Eos), None);
    }

    #[test]
    fn file_source_reads_both_formats() {
        for format in [IngestFormat::Jsonl, IngestFormat::Csv] {
            let path = std::env::temp_dir().join(format!(
                "rideshare-ingest-test-{:?}-{}.events",
                format,
                std::process::id()
            ));
            let events = [
                driver(0),
                task(0, 50),
                StreamEvent::EpochTick(Timestamp::from_secs(600)),
            ];
            let mut f = std::fs::File::create(&path).unwrap();
            for e in &events {
                writeln!(f, "{}", event_to_line(e, format)).unwrap();
            }
            writeln!(
                f,
                "{}",
                match format {
                    IngestFormat::Jsonl => to_json_line(&WireEvent::Eos),
                    IngestFormat::Csv => to_csv_line(&WireEvent::Eos),
                }
            )
            .unwrap();
            drop(f);

            let mut src = FileSource::open(&path, format).unwrap();
            let mut got = Vec::new();
            while let Some(e) = src.next_event().unwrap() {
                got.push(e);
            }
            assert_eq!(got, events);
            // After Eos, the source stays finished.
            assert_eq!(src.next_event().unwrap(), None);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn file_source_reports_malformed_lines() {
        let path =
            std::env::temp_dir().join(format!("rideshare-ingest-bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"event\":\"tick\",\"at\":10}\nnot json\n").unwrap();
        let mut src = FileSource::open(&path, IngestFormat::Jsonl).unwrap();
        assert!(src.next_event().unwrap().is_some());
        match src.next_event() {
            Err(IngestError::Malformed { line: 2, .. }) => {}
            other => panic!("expected Malformed at line 2, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn guard_front_runs_engine_panics() {
        let mut g = EventGuard::new();
        g.admit(&driver(0)).unwrap();
        g.admit(&task(0, 100)).unwrap();
        assert_eq!(
            g.admit(&task(1, 50)),
            Err(IngestError::NonMonotonic {
                prev: Timestamp::from_secs(100),
                at: Timestamp::from_secs(50),
            })
        );
        assert_eq!(
            g.admit(&driver(7)),
            Err(IngestError::NonDenseDriver {
                got: 7,
                expected: 1
            })
        );
        assert_eq!(
            g.admit(&StreamEvent::DriverOffline(DriverId::new(3))),
            Err(IngestError::UnknownDriver { id: 3 })
        );
        // Equal timestamps are legal (same-instant arrivals).
        g.admit(&task(1, 100)).unwrap();
    }
    /// The follow-mode tail shares one `POLL` sleep between growth checks
    /// and shutdown checks, and the flag is tested *before* every sleep —
    /// so flipping it while the source idles at EOF must be honored within
    /// roughly one poll interval, never a multi-interval drain. Timed
    /// regression pin for that promptness (generous bound: single-core CI
    /// boxes schedule the waking thread late, but a multi-interval lag or
    /// an unbounded drain would blow far past it).
    #[test]
    fn follow_mode_shutdown_is_prompt_on_idle_tail() {
        use std::sync::atomic::AtomicBool;
        use std::time::Instant;

        let path = std::env::temp_dir().join(format!(
            "rideshare-ingest-shutdown-{}.jsonl",
            std::process::id()
        ));
        // One complete line, no EOS marker: the tail reaches EOF and idles.
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "{}", event_to_line(&driver(0), IngestFormat::Jsonl)).unwrap();
        drop(f);

        let flag = Arc::new(AtomicBool::new(false));
        let mut source = FileSource::open(&path, IngestFormat::Jsonl)
            .unwrap()
            .follow(true)
            .with_shutdown(Arc::clone(&flag));
        assert!(matches!(
            source.next_event(),
            Ok(Some(StreamEvent::DriverOnline(_)))
        ));

        // Flip the flag from another thread while `next_event` is parked
        // in its poll loop at EOF.
        let flipper = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                flag.store(true, Ordering::Relaxed);
            })
        };
        let start = Instant::now();
        let next = source.next_event();
        let elapsed = start.elapsed();
        flipper.join().unwrap();
        assert!(matches!(next, Ok(None)), "shutdown must end the stream");
        assert!(
            elapsed < Duration::from_millis(500),
            "idle-tail shutdown took {elapsed:?}; expected ~flag-flip (30ms) + one poll"
        );

        // Already-flipped flag: the very next call returns immediately,
        // without even one poll sleep.
        let mut source = FileSource::open(&path, IngestFormat::Jsonl)
            .unwrap()
            .follow(true)
            .with_shutdown(Arc::clone(&flag));
        assert!(matches!(
            source.next_event(),
            Ok(Some(StreamEvent::DriverOnline(_)))
        ));
        let start = Instant::now();
        assert!(matches!(source.next_event(), Ok(None)));
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "pre-set shutdown flag must not wait out extra poll intervals"
        );

        let _ = std::fs::remove_file(&path);
    }
}
