//! Hostile-input regressions for the ingestion layer.
//!
//! The [`rideshare_online::IngestSource`] contract says a source must
//! never panic on hostile bytes — every transport or decode problem is a
//! typed [`IngestError`]. These tests feed each source the nastiest
//! inputs a producer (or attacker) can hand it and pin the error shape,
//! so a future `unwrap` sneaking into the path fails here before the
//! audit even runs.

use rideshare_online::{FileSource, IngestError, IngestFormat, IngestSource, TcpSource};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

/// A unique temp file seeded with `bytes`, cleaned up on drop.
struct TempEvents(PathBuf);

impl TempEvents {
    fn new(tag: &str, bytes: &[u8]) -> Self {
        let path = std::env::temp_dir().join(format!(
            "rideshare-hostile-{tag}-{}.events",
            std::process::id()
        ));
        std::fs::write(&path, bytes).unwrap();
        Self(path)
    }
}

impl Drop for TempEvents {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn drain(mut src: impl IngestSource) -> Result<usize, IngestError> {
    let mut n = 0;
    while src.next_event()?.is_some() {
        n += 1;
    }
    Ok(n)
}

#[test]
fn invalid_utf8_file_is_an_io_error_not_a_panic() {
    let junk = TempEvents::new("utf8", &[0xff, 0xfe, 0x80, b'\n', 0xc3, 0x28, b'\n']);
    for format in [IngestFormat::Jsonl, IngestFormat::Csv] {
        let src = FileSource::open(&junk.0, format).unwrap();
        match drain(src) {
            Err(IngestError::Io(_)) => {}
            other => panic!("expected Io error on invalid UTF-8, got {other:?}"),
        }
    }
}

#[test]
fn garbage_jsonl_is_malformed_with_line_number() {
    // A blank line first: it is skipped but still counted, so the
    // diagnostic points at the file's real line 2.
    let junk = TempEvents::new("jsonl", b"\n{\"kind\":\"nonsense\"}\n");
    let src = FileSource::open(&junk.0, IngestFormat::Jsonl).unwrap();
    match drain(src) {
        Err(IngestError::Malformed { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn truncated_json_object_is_malformed() {
    // A real event line cut mid-object — the classic torn tail write.
    let junk = TempEvents::new("torn", b"{\"kind\":\"epoch_tick\",\"t\":36\n");
    let src = FileSource::open(&junk.0, IngestFormat::Jsonl).unwrap();
    assert!(matches!(
        drain(src),
        Err(IngestError::Malformed { line: 1, .. })
    ));
}

#[test]
fn garbage_csv_is_malformed() {
    let junk = TempEvents::new("csv", b"x,y,z,w\n");
    let src = FileSource::open(&junk.0, IngestFormat::Csv).unwrap();
    assert!(matches!(drain(src), Err(IngestError::Malformed { .. })));
}

#[test]
fn empty_file_is_a_clean_end_of_stream() {
    let junk = TempEvents::new("empty", b"");
    let src = FileSource::open(&junk.0, IngestFormat::Jsonl).unwrap();
    assert_eq!(drain(src).unwrap(), 0);
}

#[test]
fn missing_file_is_an_io_error() {
    let path = std::env::temp_dir().join("rideshare-hostile-no-such-file.events");
    assert!(matches!(
        FileSource::open(&path, IngestFormat::Jsonl),
        Err(IngestError::Io(_))
    ));
}

/// Spawns a producer thread that writes `bytes` to a loopback socket and
/// returns the accepted server-side stream.
fn loopback(bytes: Vec<u8>) -> TcpStream {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&bytes).unwrap();
        // Dropping the stream closes the connection.
    });
    listener.accept().unwrap().0
}

#[test]
fn tcp_garbage_frame_is_a_typed_error_not_a_panic() {
    // A plausible length prefix followed by bytes that are not a frame.
    let mut bytes = 16u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0xde; 16]);
    let src = TcpSource::from_stream(loopback(bytes));
    match drain(src) {
        Err(IngestError::Frame(_)) => {}
        other => panic!("expected Frame error, got {other:?}"),
    }
}

#[test]
fn tcp_mid_frame_disconnect_reports_stranded_bytes() {
    // A prefix promising 64 bytes, then the producer vanishes after 3.
    let mut bytes = 64u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[1, 2, 3]);
    let src = TcpSource::from_stream(loopback(bytes));
    match drain(src) {
        Err(IngestError::Disconnected { pending_bytes }) => {
            assert_eq!(pending_bytes, 7, "4 prefix + 3 body bytes stranded");
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn tcp_clean_close_on_frame_boundary_ends_stream() {
    let src = TcpSource::from_stream(loopback(Vec::new()));
    assert_eq!(drain(src).unwrap(), 0);
}
