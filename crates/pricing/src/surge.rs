//! The surge-multiplier engine.
//!
//! Implements the mechanism the paper describes in §III-A: "the price rate,
//! also named as the Surge Multiplier (SM), increases when demand is higher
//! than supply for a given geographic area". The engine divides the service
//! area into grid cells (shared with [`rideshare_geo::GridIndex`]) and maps
//! each cell's demand/supply ratio through a clamped power curve — the shape
//! Chen & Sheldon measured on the Uber platform: flat at 1× in balance,
//! rising sub-linearly with excess demand, capped by policy.

use rideshare_geo::CellId;
use std::collections::BTreeMap;

/// Parameters of the surge curve `α = clamp((D / max(S, 1))^exponent, 1, cap)`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SurgeConfig {
    /// Exponent of the demand/supply ratio (0 disables surge entirely).
    pub exponent: f64,
    /// Upper cap on the multiplier (Uber historically capped surges around
    /// 3–5× outside emergencies).
    pub cap: f64,
}

impl SurgeConfig {
    /// Uber-like default: square-root response capped at 3×.
    #[must_use]
    pub fn uber_like() -> Self {
        Self {
            exponent: 0.5,
            cap: 3.0,
        }
    }

    /// Evaluates the curve for explicit counts:
    /// `clamp((demand / max(supply, 1))^exponent, 1, cap)`.
    ///
    /// This is the pure form of [`SurgeEngine::multiplier`], usable without
    /// engine state (e.g. for publish-time repricing from a rolling
    /// window).
    #[must_use]
    pub fn multiplier_for(&self, demand: u32, supply: u32) -> f64 {
        let d = f64::from(demand);
        if d == 0.0 || self.exponent == 0.0 {
            return 1.0;
        }
        let s = f64::from(supply.max(1));
        (d / s).powf(self.exponent).clamp(1.0, self.cap)
    }

    /// Disables surge: every multiplier is exactly 1.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            exponent: 0.0,
            cap: 1.0,
        }
    }
}

impl Default for SurgeConfig {
    fn default() -> Self {
        Self::uber_like()
    }
}

/// Tracks per-cell open demand and idle supply and produces multipliers.
///
/// The online simulator calls [`SurgeEngine::add_demand`] when a task is
/// published in a cell, [`SurgeEngine::remove_demand`] when it is served or
/// rejected, and the supply counterparts as drivers idle in or leave a cell.
///
/// # Examples
///
/// ```
/// use rideshare_geo::CellId;
/// use rideshare_pricing::{SurgeConfig, SurgeEngine};
///
/// let mut surge = SurgeEngine::new(SurgeConfig::uber_like());
/// let cell = CellId::new(3, 4);
/// assert_eq!(surge.multiplier(cell), 1.0); // balanced by default
/// for _ in 0..9 {
///     surge.add_demand(cell);
/// }
/// surge.add_supply(cell);
/// // ratio 9: sqrt(9) = 3, at the cap.
/// assert_eq!(surge.multiplier(cell), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct SurgeEngine {
    config: SurgeConfig,
    demand: BTreeMap<CellId, u32>,
    supply: BTreeMap<CellId, u32>,
}

impl SurgeEngine {
    /// Creates an engine with the given curve.
    ///
    /// # Panics
    ///
    /// Panics if `exponent < 0` or `cap < 1`.
    #[must_use]
    pub fn new(config: SurgeConfig) -> Self {
        assert!(config.exponent >= 0.0, "negative surge exponent");
        assert!(config.cap >= 1.0, "surge cap below 1");
        Self {
            config,
            demand: BTreeMap::new(),
            supply: BTreeMap::new(),
        }
    }

    /// The configured curve.
    #[must_use]
    pub fn config(&self) -> SurgeConfig {
        self.config
    }

    /// Registers one open task in `cell`.
    pub fn add_demand(&mut self, cell: CellId) {
        *self.demand.entry(cell).or_insert(0) += 1;
    }

    /// Removes one open task from `cell` (saturating).
    pub fn remove_demand(&mut self, cell: CellId) {
        if let Some(d) = self.demand.get_mut(&cell) {
            *d = d.saturating_sub(1);
        }
    }

    /// Registers one idle driver in `cell`.
    pub fn add_supply(&mut self, cell: CellId) {
        *self.supply.entry(cell).or_insert(0) += 1;
    }

    /// Removes one idle driver from `cell` (saturating).
    pub fn remove_supply(&mut self, cell: CellId) {
        if let Some(s) = self.supply.get_mut(&cell) {
            *s = s.saturating_sub(1);
        }
    }

    /// Current open demand in `cell`.
    #[must_use]
    pub fn demand(&self, cell: CellId) -> u32 {
        self.demand.get(&cell).copied().unwrap_or(0)
    }

    /// Current idle supply in `cell`.
    #[must_use]
    pub fn supply(&self, cell: CellId) -> u32 {
        self.supply.get(&cell).copied().unwrap_or(0)
    }

    /// The surge multiplier for `cell`:
    /// `clamp((D / max(S, 1))^exponent, 1, cap)`.
    ///
    /// A cell with no demand is never surged; supply is floored at one
    /// virtual driver so empty cells do not divide by zero.
    #[must_use]
    pub fn multiplier(&self, cell: CellId) -> f64 {
        self.config
            .multiplier_for(self.demand(cell), self.supply(cell))
    }

    /// Clears all counts (e.g. at a time-bucket boundary).
    pub fn reset(&mut self) {
        self.demand.clear();
        self.supply.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellId {
        CellId::new(1, 1)
    }

    #[test]
    fn balanced_market_no_surge() {
        let mut e = SurgeEngine::new(SurgeConfig::uber_like());
        e.add_demand(cell());
        e.add_supply(cell());
        assert_eq!(e.multiplier(cell()), 1.0);
    }

    #[test]
    fn excess_supply_never_discounts() {
        let mut e = SurgeEngine::new(SurgeConfig::uber_like());
        e.add_demand(cell());
        for _ in 0..10 {
            e.add_supply(cell());
        }
        assert_eq!(e.multiplier(cell()), 1.0);
    }

    #[test]
    fn surge_grows_with_imbalance_and_caps() {
        let mut e = SurgeEngine::new(SurgeConfig {
            exponent: 0.5,
            cap: 3.0,
        });
        e.add_supply(cell());
        e.add_demand(cell());
        let mut last = e.multiplier(cell());
        for _ in 0..3 {
            e.add_demand(cell());
            let m = e.multiplier(cell());
            assert!(m >= last, "multiplier must be monotone in demand");
            last = m;
        }
        // D=4, S=1 → sqrt(4) = 2.
        assert!((last - 2.0).abs() < 1e-9);
        for _ in 0..100 {
            e.add_demand(cell());
        }
        assert_eq!(e.multiplier(cell()), 3.0, "cap binds");
    }

    #[test]
    fn empty_cell_is_balanced() {
        let e = SurgeEngine::new(SurgeConfig::uber_like());
        assert_eq!(e.multiplier(cell()), 1.0);
        assert_eq!(e.demand(cell()), 0);
        assert_eq!(e.supply(cell()), 0);
    }

    #[test]
    fn disabled_config_always_one() {
        let mut e = SurgeEngine::new(SurgeConfig::disabled());
        for _ in 0..50 {
            e.add_demand(cell());
        }
        assert_eq!(e.multiplier(cell()), 1.0);
    }

    #[test]
    fn removal_is_saturating() {
        let mut e = SurgeEngine::new(SurgeConfig::uber_like());
        e.remove_demand(cell());
        e.remove_supply(cell());
        assert_eq!(e.demand(cell()), 0);
        e.add_demand(cell());
        e.remove_demand(cell());
        e.remove_demand(cell());
        assert_eq!(e.demand(cell()), 0);
    }

    #[test]
    fn cells_are_independent() {
        let mut e = SurgeEngine::new(SurgeConfig::uber_like());
        let hot = CellId::new(0, 0);
        let cold = CellId::new(5, 5);
        for _ in 0..9 {
            e.add_demand(hot);
        }
        assert!(e.multiplier(hot) > 1.0);
        assert_eq!(e.multiplier(cold), 1.0);
    }

    #[test]
    fn reset_clears() {
        let mut e = SurgeEngine::new(SurgeConfig::uber_like());
        for _ in 0..9 {
            e.add_demand(cell());
        }
        e.reset();
        assert_eq!(e.multiplier(cell()), 1.0);
    }

    #[test]
    #[should_panic(expected = "surge cap below 1")]
    fn rejects_sub_unit_cap() {
        let _ = SurgeEngine::new(SurgeConfig {
            exponent: 1.0,
            cap: 0.5,
        });
    }
}
