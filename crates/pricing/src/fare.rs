//! The linear surge fare of the paper's Eq. 15.

use rideshare_types::{Money, TimeDelta};

/// Computes task payoffs `pₘ = αₘ · (β₁ · distance + β₂ · duration)`.
///
/// `β₁` is in currency per kilometre, `β₂` in currency per minute; both are
/// "global constants" in the paper. The duration argument is the task's
/// time window `t̄⁺ₘ − t̄⁻ₘ` exactly as Eq. 15 specifies.
///
/// # Examples
///
/// ```
/// use rideshare_pricing::FareModel;
/// use rideshare_types::TimeDelta;
/// let fare = FareModel::new(0.8, 0.25, 1.5);
/// let p = fare.price(10.0, TimeDelta::from_mins(20), 1.0);
/// // base 1.5 + 0.8*10 + 0.25*20 = 14.5
/// assert!((p.as_f64() - 14.5).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FareModel {
    beta1_per_km: f64,
    beta2_per_min: f64,
    base_fare: f64,
}

impl FareModel {
    /// Creates a fare model; `base_fare` is the flag-drop amount (set it to
    /// zero for the paper's strict Eq. 15).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or non-finite.
    #[must_use]
    pub fn new(beta1_per_km: f64, beta2_per_min: f64, base_fare: f64) -> Self {
        for (name, v) in [
            ("beta1_per_km", beta1_per_km),
            ("beta2_per_min", beta2_per_min),
            ("base_fare", base_fare),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be >= 0, got {v}");
        }
        Self {
            beta1_per_km,
            beta2_per_min,
            base_fare,
        }
    }

    /// Porto taxi tariff, approximately: €0.47/km plus waiting/time component
    /// of €0.25/min over a €2 flag drop — keeps fares comfortably above the
    /// €0.12/km driving cost so the market has positive surplus, as in the
    /// real trace.
    #[must_use]
    pub fn porto_taxi() -> Self {
        Self::new(0.47, 0.25, 2.0)
    }

    /// Distance coefficient `β₁` (currency per km).
    #[must_use]
    pub const fn beta1_per_km(&self) -> f64 {
        self.beta1_per_km
    }

    /// Time coefficient `β₂` (currency per minute).
    #[must_use]
    pub const fn beta2_per_min(&self) -> f64 {
        self.beta2_per_min
    }

    /// Flag-drop component.
    #[must_use]
    pub const fn base_fare(&self) -> f64 {
        self.base_fare
    }

    /// Prices a task from its driven distance, time window, and surge
    /// multiplier (Eq. 15).
    ///
    /// # Panics
    ///
    /// Panics if `surge_multiplier < 1.0` (surge never discounts below the
    /// base rate) or `distance_km < 0`.
    #[must_use]
    pub fn price(&self, distance_km: f64, window: TimeDelta, surge_multiplier: f64) -> Money {
        assert!(distance_km >= 0.0, "negative distance");
        assert!(
            surge_multiplier >= 1.0,
            "surge multiplier below 1: {surge_multiplier}"
        );
        let mins = window.as_mins_f64().max(0.0);
        Money::new(
            surge_multiplier
                * (self.base_fare + self.beta1_per_km * distance_km + self.beta2_per_min * mins),
        )
    }
}

impl Default for FareModel {
    fn default() -> Self {
        Self::porto_taxi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_components() {
        let f = FareModel::new(1.0, 2.0, 0.0);
        let p = f.price(3.0, TimeDelta::from_mins(4), 1.0);
        assert!((p.as_f64() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn surge_scales_linearly() {
        let f = FareModel::porto_taxi();
        let p1 = f.price(5.0, TimeDelta::from_mins(10), 1.0);
        let p3 = f.price(5.0, TimeDelta::from_mins(10), 3.0);
        assert!(p3.approx_eq(p1 * 3.0));
    }

    #[test]
    fn zero_trip_costs_base_fare() {
        let f = FareModel::new(0.5, 0.5, 2.5);
        let p = f.price(0.0, rideshare_types::TimeDelta::ZERO, 1.0);
        assert!((p.as_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn negative_window_treated_as_zero() {
        let f = FareModel::new(1.0, 1.0, 0.0);
        let p = f.price(2.0, TimeDelta::from_mins(-5), 1.0);
        assert!((p.as_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "surge multiplier below 1")]
    fn rejects_discount_surge() {
        let _ = FareModel::porto_taxi().price(1.0, TimeDelta::from_mins(1), 0.5);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn rejects_negative_coefficients() {
        let _ = FareModel::new(-0.1, 0.0, 0.0);
    }
}
