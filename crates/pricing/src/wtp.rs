//! Willingness-to-pay (customer valuation) model.

use rand::Rng;
use rideshare_types::Money;

/// Draws customer valuations `bₘ` as a multiplicative markup over the
/// posted price `pₘ`.
///
/// The paper's individual-rationality argument (§III-A) observes that a
/// task is only *published* when `bₘ ≥ pₘ` — customers with lower
/// valuations never enter the market — so the observable WTP distribution
/// is the price times a markup `≥ 1`. We model the markup as
/// `1 + LogNormal(μ, σ)`-distributed surplus, a standard surplus shape.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rideshare_pricing::WtpModel;
/// use rideshare_types::Money;
///
/// let wtp = WtpModel::default();
/// let mut rng = StdRng::seed_from_u64(1);
/// let price = Money::new(10.0);
/// let b = wtp.sample(&mut rng, price);
/// assert!(b >= price); // published tasks always satisfy IR
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WtpModel {
    mu: f64,
    sigma: f64,
}

impl WtpModel {
    /// Creates a model where the surplus fraction is `LogNormal(mu, sigma)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or either parameter is non-finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite(), "non-finite parameter");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { mu, sigma }
    }

    /// Median surplus fraction, `exp(mu)`.
    #[must_use]
    pub fn median_surplus(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one valuation for a task priced at `price`.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, price: Money) -> Money {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let normal = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        let surplus = (self.mu + self.sigma * normal).exp();
        price * (1.0 + surplus)
    }
}

impl Default for WtpModel {
    /// Median surplus ≈ 22% of the fare with moderate dispersion — consistent
    /// with consumer-surplus estimates for ride-sharing (Cramer & Krueger).
    fn default() -> Self {
        Self::new(-1.5, 0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wtp_always_at_least_price() {
        let wtp = WtpModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let price = Money::new(12.0);
        for _ in 0..10_000 {
            assert!(wtp.sample(&mut rng, price) >= price);
        }
    }

    #[test]
    fn median_surplus_matches() {
        let wtp = WtpModel::new(-1.0, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let price = Money::new(10.0);
        let mut fracs: Vec<f64> = (0..40_000)
            .map(|_| (wtp.sample(&mut rng, price) - price).as_f64() / price.as_f64())
            .collect();
        fracs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = fracs[fracs.len() / 2];
        assert!(
            (median - wtp.median_surplus()).abs() / wtp.median_surplus() < 0.05,
            "median {median} vs {}",
            wtp.median_surplus()
        );
    }

    #[test]
    fn zero_sigma_deterministic_markup() {
        let wtp = WtpModel::new(-1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let price = Money::new(10.0);
        let expected = price * (1.0 + (-1.0f64).exp());
        for _ in 0..5 {
            assert!(wtp.sample(&mut rng, price).approx_eq(expected));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        let _ = WtpModel::new(0.0, -0.1);
    }
}
