//! Pricing substrate: surge multipliers, fares, and willingness-to-pay.
//!
//! The paper prices each task with a *simplified surge pricing* rule
//! (§VI-A, Eq. 15):
//!
//! ```text
//! pₘ = αₘ · (β₁ · dis(s̄ₘ, d̄ₘ) + β₂ · (t̄⁺ₘ − t̄⁻ₘ))
//! ```
//!
//! where `αₘ` is the Uber-style *surge multiplier* — "the price rate …
//! increases when demand is higher than supply for a given geographic area"
//! (§III-A, citing Chen & Sheldon's measurement study). This crate provides:
//!
//! - [`FareModel`]: the linear fare of Eq. 15 (`β₁`, `β₂` constants),
//! - [`SurgeEngine`]: per-cell demand/supply tracking over a
//!   [`rideshare_geo::GridIndex`]-compatible cell space, with the standard
//!   clamped power-curve multiplier,
//! - [`WtpModel`]: customer valuations `bₘ ≥ pₘ` (a customer "will only
//!   admit to publish the task when her WTP is higher than the price"),
//!   drawn as a log-normal markup over the fare.
//!
//! # Examples
//!
//! ```
//! use rideshare_pricing::FareModel;
//! use rideshare_types::TimeDelta;
//!
//! let fare = FareModel::porto_taxi();
//! // A 5 km, 15-minute ride at surge 1.0.
//! let p = fare.price(5.0, TimeDelta::from_mins(15), 1.0);
//! assert!(p.as_f64() > 3.0 && p.as_f64() < 15.0);
//! // Surge 2× doubles it.
//! let p2 = fare.price(5.0, TimeDelta::from_mins(15), 2.0);
//! assert!(p2.approx_eq(p * 2.0));
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod fare;
mod surge;
mod wtp;

pub use fare::FareModel;
pub use surge::{SurgeConfig, SurgeEngine};
pub use wtp::WtpModel;
