//! Linear- and integer-programming substrate, hand-rolled in pure Rust.
//!
//! The paper evaluates its algorithms against the LP-relaxation upper bound
//! `Z_f*` (§III-E) and, at small scale, against the exact integral optimum
//! `Z*` computed with CPLEX/MOSEK (§VI-B). Neither solver is available to a
//! pure-Rust reproduction, and the offline LP crate ecosystem is thin, so
//! this crate implements the required optimization machinery from scratch:
//!
//! - [`LinearProgram`]: a small modelling layer (named variables, sparse
//!   constraint rows, `≤ / = / ≥` senses) over the `simplex` module's
//!   dense two-phase primal simplex with Bland-rule anti-cycling,
//!   returning primal values **and dual prices**,
//! - [`PackingLp`]: a warm-startable simplex specialised to packing LPs
//!   (`max c·f` s.t. `A f ≤ 1`, `f ≥ 0`, `A ∈ {0,1}`) whose tableau carries
//!   `B⁻¹` explicitly so **column generation** can append columns and
//!   re-optimise without restarting — this is the master problem of the
//!   `Z_f*` bound,
//! - [`BranchAndBound`]: a 0/1 MILP solver (LP-relaxation bounding,
//!   most-fractional branching) standing in for CPLEX on small instances.
//!
//! # Examples
//!
//! ```
//! use rideshare_lp::{Cmp, LinearProgram};
//!
//! // max 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x,y >= 0  → obj 10 at (2,2).
//! let mut lp = LinearProgram::maximize();
//! let x = lp.add_var("x", 3.0);
//! let y = lp.add_var("y", 2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], rideshare_lp::Cmp::Le, 4.0);
//! lp.add_constraint(vec![(x, 1.0)], rideshare_lp::Cmp::Le, 2.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - 10.0).abs() < 1e-9);
//! assert!((sol.values[x] - 2.0).abs() < 1e-9);
//! # let _ = Cmp::Le;
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod branch_bound;
mod model;
mod packing;
mod simplex;

pub use branch_bound::{BranchAndBound, MilpSolution};
pub use model::{Cmp, LinearProgram, LpSolution, VarId};
pub use packing::PackingLp;
