//! A dense two-phase primal simplex solver.
//!
//! Designed for the small-to-medium LPs this framework generates (arc-form
//! relaxations of small markets, branch-and-bound nodes, tests). The
//! column-generation master problem uses the specialised warm-startable
//! [`crate::PackingLp`] instead.
//!
//! Implementation notes:
//!
//! - full tableau with an explicit objective (reduced-cost) row,
//! - phase 1 minimises the sum of artificial variables; redundant rows whose
//!   artificial cannot be driven out are deleted,
//! - Dantzig (most-negative reduced cost) pricing with a permanent switch to
//!   Bland's rule after a pivot budget, guaranteeing termination,
//! - dual prices are read off the objective row under each row's slack,
//!   surplus, or artificial column.

use rideshare_types::{MarketError, Result};

use crate::model::{Cmp, LinearProgram, LpSolution, Sense};

/// Tolerance for reduced-cost optimality tests.
const RC_EPS: f64 = 1e-9;
/// Minimum absolute pivot magnitude.
const PIVOT_EPS: f64 = 1e-7;
/// Feasibility tolerance for the phase-1 objective.
const FEAS_EPS: f64 = 1e-7;

/// Solves `lp` with the two-phase dense simplex.
///
/// See [`LinearProgram::solve`] for the error contract.
pub(crate) fn solve(lp: &LinearProgram) -> Result<LpSolution> {
    let mut t = Tableau::build(lp);
    t.phase_one()?;
    t.phase_two()?;
    Ok(t.extract(lp))
}

/// Which auxiliary column belongs to each original row (for dual recovery).
#[derive(Clone, Copy, Debug)]
struct RowCols {
    /// Slack (`Le`, coefficient +1) or surplus (`Ge`, coefficient −1).
    slack: Option<usize>,
    /// Artificial column (`Ge`/`Eq` rows).
    artificial: Option<usize>,
    /// Whether the row was negated to make its RHS non-negative.
    negated: bool,
}

struct Tableau {
    /// `rows × (ncols)` coefficient matrix.
    a: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Objective row in `z_j − c_j` form.
    obj: Vec<f64>,
    /// Basis: `basis[i]` = column basic in row `i`.
    basis: Vec<usize>,
    /// Phase-2 cost of every column (structural costs; auxiliaries 0).
    costs: Vec<f64>,
    /// Columns that may never enter the basis (artificials in phase 2).
    banned: Vec<bool>,
    n_structural: usize,
    first_artificial: usize,
    row_cols: Vec<RowCols>,
    /// Original row index of each current tableau row (rows can be deleted).
    row_origin: Vec<usize>,
    pivots: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        // Max sense internally; negate costs for min problems.
        let sign = match lp.sense {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };

        // Count auxiliary columns.
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for row in &lp.rows {
            let negated = row.rhs < 0.0;
            let cmp = effective_cmp(row.cmp, negated);
            match cmp {
                Cmp::Le => n_slack += 1,
                Cmp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Cmp::Eq => n_art += 1,
            }
        }
        let first_slack = n;
        let first_artificial = n + n_slack;
        let ncols = n + n_slack + n_art;

        let mut a = vec![vec![0.0; ncols]; m];
        let mut rhs = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut row_cols = Vec::with_capacity(m);
        let mut next_slack = first_slack;
        let mut next_art = first_artificial;

        for (i, row) in lp.rows.iter().enumerate() {
            let negated = row.rhs < 0.0;
            let s = if negated { -1.0 } else { 1.0 };
            for &(v, coeff) in &row.coeffs {
                a[i][v] += s * coeff;
            }
            rhs[i] = s * row.rhs;
            let cmp = effective_cmp(row.cmp, negated);
            let mut rc = RowCols {
                slack: None,
                artificial: None,
                negated,
            };
            match cmp {
                Cmp::Le => {
                    a[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    rc.slack = Some(next_slack);
                    next_slack += 1;
                }
                Cmp::Ge => {
                    a[i][next_slack] = -1.0;
                    rc.slack = Some(next_slack);
                    next_slack += 1;
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    rc.artificial = Some(next_art);
                    next_art += 1;
                }
                Cmp::Eq => {
                    a[i][next_art] = 1.0;
                    basis[i] = next_art;
                    rc.artificial = Some(next_art);
                    next_art += 1;
                }
            }
            row_cols.push(rc);
        }

        let mut costs = vec![0.0; ncols];
        for (j, c) in lp.objective.iter().enumerate() {
            costs[j] = sign * c;
        }

        Tableau {
            a,
            rhs,
            obj: vec![0.0; ncols],
            basis,
            costs,
            banned: vec![false; ncols],
            n_structural: n,
            first_artificial,
            row_cols,
            row_origin: (0..m).collect(),
            pivots: 0,
        }
    }

    fn ncols(&self) -> usize {
        self.costs.len()
    }

    fn nrows(&self) -> usize {
        self.a.len()
    }

    /// Rebuilds the objective row `z_j − c_j` for the given cost vector.
    fn price_out(&mut self, cost_of: impl Fn(usize) -> f64) {
        let ncols = self.ncols();
        for j in 0..ncols {
            let mut z = 0.0;
            for (i, row) in self.a.iter().enumerate() {
                let cb = cost_of(self.basis[i]);
                if cb != 0.0 {
                    z += cb * row[j];
                }
            }
            self.obj[j] = z - cost_of(j);
        }
    }

    fn objective_value(&self, cost_of: impl Fn(usize) -> f64) -> f64 {
        self.rhs
            .iter()
            .zip(&self.basis)
            .map(|(&b, &col)| cost_of(col) * b)
            .sum()
    }

    /// Runs primal simplex pivots until optimality for the current
    /// objective row. Returns `Err(Unbounded)` if a column can increase
    /// without bound.
    fn optimize(&mut self) -> Result<()> {
        let max_pivots = 200 * (self.nrows() + self.ncols()) + 20_000;
        let dantzig_budget = 50 * (self.nrows() + self.ncols()) + 5_000;
        loop {
            if self.pivots > max_pivots {
                return Err(MarketError::IterationLimit { limit: max_pivots });
            }
            let bland = self.pivots > dantzig_budget;
            let Some(enter) = self.choose_entering(bland) else {
                return Ok(());
            };
            let Some(leave_row) = self.choose_leaving(enter) else {
                return Err(MarketError::Unbounded);
            };
            self.pivot(leave_row, enter);
        }
    }

    fn choose_entering(&self, bland: bool) -> Option<usize> {
        if bland {
            (0..self.ncols()).find(|&j| !self.banned[j] && self.obj[j] < -RC_EPS)
        } else {
            let mut best = None;
            let mut best_val = -RC_EPS;
            for j in 0..self.ncols() {
                if !self.banned[j] && self.obj[j] < best_val {
                    best_val = self.obj[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    fn choose_leaving(&self, enter: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.nrows() {
            let coeff = self.a[i][enter];
            if coeff > PIVOT_EPS {
                let ratio = self.rhs[i] / coeff;
                let better = match best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < br - 1e-12 || (ratio < br + 1e-12 && self.basis[i] < self.basis[bi])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > PIVOT_EPS);
        let inv = 1.0 / piv;
        for x in self.a[row].iter_mut() {
            *x *= inv;
        }
        self.rhs[row] *= inv;
        // Eliminate the column from every other row and the objective row.
        let pivot_row = self.a[row].clone();
        let pivot_rhs = self.rhs[row];
        for i in 0..self.nrows() {
            if i == row {
                continue;
            }
            let factor = self.a[i][col];
            if factor != 0.0 {
                for (x, &p) in self.a[i].iter_mut().zip(&pivot_row) {
                    *x -= factor * p;
                }
                self.rhs[i] -= factor * pivot_rhs;
                if self.rhs[i].abs() < 1e-12 {
                    self.rhs[i] = 0.0;
                }
            }
        }
        let factor = self.obj[col];
        if factor != 0.0 {
            for (x, &p) in self.obj.iter_mut().zip(&pivot_row) {
                *x -= factor * p;
            }
        }
        self.basis[row] = col;
    }

    fn phase_one(&mut self) -> Result<()> {
        if self.first_artificial == self.ncols() {
            // Pure-`Le` problem with non-negative RHS: slack basis feasible.
            return Ok(());
        }
        let first_art = self.first_artificial;
        let cost = move |j: usize| if j >= first_art { -1.0 } else { 0.0 };
        self.price_out(cost);
        self.optimize()?;
        let z = self.objective_value(cost);
        if z < -FEAS_EPS {
            return Err(MarketError::Infeasible);
        }
        // Drive basic artificials out, deleting redundant rows.
        let mut i = 0;
        while i < self.nrows() {
            if self.basis[i] >= self.first_artificial {
                let enter = (0..self.first_artificial).find(|&j| self.a[i][j].abs() > PIVOT_EPS);
                match enter {
                    Some(j) => self.pivot(i, j),
                    None => {
                        // Redundant constraint: remove the row.
                        self.a.remove(i);
                        self.rhs.remove(i);
                        self.basis.remove(i);
                        self.row_origin.remove(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
        // Ban artificial columns from phase 2 (kept only for dual recovery).
        for j in self.first_artificial..self.ncols() {
            self.banned[j] = true;
        }
        Ok(())
    }

    fn phase_two(&mut self) -> Result<()> {
        let costs = self.costs.clone();
        self.price_out(|j| costs[j]);
        self.optimize()
    }

    fn extract(&self, lp: &LinearProgram) -> LpSolution {
        let sign = match lp.sense {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let mut values = vec![0.0; self.n_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_structural {
                values[b] = if self.rhs[i].abs() < 1e-11 {
                    0.0
                } else {
                    self.rhs[i]
                };
            }
        }
        let costs = self.costs.clone();
        let objective = sign * self.objective_value(|j| costs[j]);

        // Duals: y_i = obj-row entry under the row's +e_i auxiliary column
        // (negated for surplus columns, which carry −e_i), re-negated if the
        // row itself was negated during standardisation. Deleted (redundant)
        // rows keep dual 0.
        let mut duals = vec![0.0; lp.num_constraints()];
        for (orig, rc) in self.row_cols.iter().enumerate() {
            let y = if let Some(art) = rc.artificial {
                self.obj[art]
            } else if let Some(s) = rc.slack {
                self.obj[s]
            } else {
                0.0
            };
            duals[orig] = if rc.negated { -y } else { y } * sign;
        }
        // Rows deleted as redundant no longer exist in the tableau, but
        // their obj-row entries were kept consistent throughout pivoting,
        // so the recovery above remains valid.
        LpSolution {
            objective,
            values,
            duals,
        }
    }
}

fn effective_cmp(cmp: Cmp, negated: bool) -> Cmp {
    if !negated {
        return cmp;
    }
    match cmp {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, LinearProgram};
    use rideshare_types::MarketError;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → 36 at (2, 6).
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 3.0);
        let y = lp.add_var("y", 5.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.values[x], 2.0);
        assert_close(sol.values[y], 6.0);
        // Strong duality: y·b = objective.
        let dual_obj = sol.duals[0] * 4.0 + sol.duals[1] * 12.0 + sol.duals[2] * 18.0;
        assert_close(dual_obj, 36.0);
    }

    #[test]
    fn textbook_min_with_ge() {
        // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36,
        // 10x + 30y >= 90 → 3.15 at (3, 2) (diet problem).
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var("x", 0.12);
        let y = lp.add_var("y", 0.15);
        lp.add_constraint(vec![(x, 60.0), (y, 60.0)], Cmp::Ge, 300.0);
        lp.add_constraint(vec![(x, 12.0), (y, 6.0)], Cmp::Ge, 36.0);
        lp.add_constraint(vec![(x, 10.0), (y, 30.0)], Cmp::Ge, 90.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.66);
        assert_close(sol.values[x], 3.0);
        assert_close(sol.values[y], 2.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, x - y = 1 → x=2, y=1, obj 4.
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 4.0);
        assert_close(sol.values[x], 2.0);
        assert_close(sol.values[y], 1.0);
    }

    #[test]
    fn negative_rhs_handled() {
        // max x s.t. -x <= -2 (i.e. x >= 2), x <= 5 → 5.
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, -1.0)], Cmp::Le, -2.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert!(matches!(lp.solve(), Err(MarketError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 0.0);
        lp.add_constraint(vec![(x, -1.0), (y, 1.0)], Cmp::Le, 1.0);
        assert!(matches!(lp.solve(), Err(MarketError::Unbounded)));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 10.0);
        let y = lp.add_var("y", -57.0);
        let z = lp.add_var("z", 9.0);
        let w = lp.add_var("w", -24.0);
        lp.add_constraint(vec![(x, 0.5), (y, -5.5), (z, -2.5), (w, 9.0)], Cmp::Le, 0.0);
        lp.add_constraint(vec![(x, 0.5), (y, -1.5), (z, -0.5), (w, 1.0)], Cmp::Le, 0.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(z, 1.0)], Cmp::Le, 1.0);
        let sol = lp.solve().unwrap();
        // x=1, z=1 (y=w=0): both degenerate rows stay at 0 slack.
        assert_close(sol.objective, 19.0);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; still solvable.
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn zero_variable_problem() {
        let mut lp = LinearProgram::maximize();
        lp.add_constraint(vec![], Cmp::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn duplicate_coeffs_summed() {
        // max x s.t. 0.5x + 0.5x <= 3 → 3.
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, 0.5), (x, 0.5)], Cmp::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn assignment_lp_is_integral() {
        // 2x2 assignment problem: LP relaxation is naturally integral.
        // max 5 a11 + 4 a12 + 3 a21 + 6 a22, rows/cols <= 1.
        let mut lp = LinearProgram::maximize();
        let a11 = lp.add_var("a11", 5.0);
        let a12 = lp.add_var("a12", 4.0);
        let a21 = lp.add_var("a21", 3.0);
        let a22 = lp.add_var("a22", 6.0);
        lp.add_constraint(vec![(a11, 1.0), (a12, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(a21, 1.0), (a22, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(a11, 1.0), (a21, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(a12, 1.0), (a22, 1.0)], Cmp::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 11.0);
        assert_close(sol.values[a11], 1.0);
        assert_close(sol.values[a22], 1.0);
    }

    #[test]
    fn duals_of_ge_rows() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 → (3,1)? obj: prefer x: 2*4=8
        // at (4,0): check constraints: x+y=4 ok, x=4>=1 ok. obj 8.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var("x", 2.0);
        let y = lp.add_var("y", 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 8.0);
        // Dual of the binding >= row times rhs recovers the objective:
        // y1*4 + y2*1 = 8 with y2 = 0.
        let dual_obj = sol.duals[0] * 4.0 + sol.duals[1] * 1.0;
        assert_close(dual_obj.abs(), 8.0);
    }
}
