//! The LP modelling layer: variables, constraints, senses.

use rideshare_types::{MarketError, Result};

use crate::simplex;

/// Index of a decision variable within a [`LinearProgram`].
pub type VarId = usize;

/// Constraint sense.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// Objective sense.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Sense {
    Maximize,
    Minimize,
}

/// A sparse constraint row.
#[derive(Clone, Debug)]
pub(crate) struct Row {
    pub coeffs: Vec<(VarId, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Variables are non-negative reals; add explicit `≤` rows for upper bounds
/// (the framework's packing formulations only need `x ≤ 1`).
///
/// # Examples
///
/// ```
/// use rideshare_lp::{Cmp, LinearProgram};
/// // min x + y  s.t.  x + 2y >= 3,  3x + y >= 4   → obj 2.0 at (1, 1).
/// let mut lp = LinearProgram::minimize();
/// let x = lp.add_var("x", 1.0);
/// let y = lp.add_var("y", 1.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 3.0);
/// lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 4.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective - 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct LinearProgram {
    pub(crate) sense: Sense,
    pub(crate) objective: Vec<f64>,
    pub(crate) names: Vec<String>,
    pub(crate) rows: Vec<Row>,
}

impl LinearProgram {
    /// Creates an empty maximization problem.
    #[must_use]
    pub fn maximize() -> Self {
        Self {
            sense: Sense::Maximize,
            objective: Vec::new(),
            names: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Creates an empty minimization problem.
    #[must_use]
    pub fn minimize() -> Self {
        Self {
            sense: Sense::Minimize,
            objective: Vec::new(),
            names: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a non-negative variable with the given objective coefficient and
    /// returns its id.
    pub fn add_var(&mut self, name: impl Into<String>, obj_coeff: f64) -> VarId {
        self.objective.push(obj_coeff);
        self.names.push(name.into());
        self.objective.len() - 1
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var]
    }

    /// Adds a sparse constraint `Σ coeffs ⋈ rhs`; returns the row index.
    ///
    /// Duplicate variable entries in `coeffs` are summed.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not exist.
    pub fn add_constraint(&mut self, coeffs: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) -> usize {
        for &(v, _) in &coeffs {
            assert!(v < self.num_vars(), "constraint references unknown var {v}");
        }
        self.rows.push(Row { coeffs, cmp, rhs });
        self.rows.len() - 1
    }

    /// Solves the LP with the two-phase dense simplex.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Infeasible`] or [`MarketError::Unbounded`] for
    /// infeasible/unbounded problems, [`MarketError::IterationLimit`] if the
    /// pivot budget is exhausted, and [`MarketError::InvalidModel`] for
    /// non-finite input data.
    pub fn solve(&self) -> Result<LpSolution> {
        self.validate()?;
        simplex::solve(self)
    }

    fn validate(&self) -> Result<()> {
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(MarketError::InvalidModel {
                reason: "non-finite objective coefficient".into(),
            });
        }
        for (i, row) in self.rows.iter().enumerate() {
            if !row.rhs.is_finite() || row.coeffs.iter().any(|(_, a)| !a.is_finite()) {
                return Err(MarketError::InvalidModel {
                    reason: format!("non-finite coefficient in row {i}"),
                });
            }
        }
        Ok(())
    }
}

/// The result of solving a [`LinearProgram`].
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value (in the problem's own sense).
    pub objective: f64,
    /// Optimal value of each variable, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Dual price of each constraint row.
    ///
    /// Signs follow the convention of a maximization problem with `≤` rows:
    /// duals are non-negative for binding `≤` rows. For minimization
    /// problems the duals are those of the equivalent negated maximization.
    pub duals: Vec<f64>,
}

impl LpSolution {
    /// Returns `true` if variable `var` is within `tol` of an integer.
    #[must_use]
    pub fn is_integral(&self, var: VarId, tol: f64) -> bool {
        let v = self.values[var];
        (v - v.round()).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_introspect() {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 2.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.var_name(y), "y");
        let r = lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        assert_eq!(r, 0);
        assert_eq!(lp.num_constraints(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown var")]
    fn rejects_unknown_var_in_constraint() {
        let mut lp = LinearProgram::maximize();
        lp.add_constraint(vec![(3, 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    fn rejects_non_finite_data() {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", f64::NAN);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        assert!(matches!(lp.solve(), Err(MarketError::InvalidModel { .. })));
    }
}
