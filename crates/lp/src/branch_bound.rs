//! A 0/1 branch-and-bound MILP solver.
//!
//! Stands in for CPLEX/MOSEK in the paper's small-scale exact evaluation
//! ("for n ≤ 50 and m ≤ 100 we can use the integer programming solvers of
//! CPLEX or MOSEK to calculate the exact value of the best integer solution
//! Z*", §VI-B). LP-relaxation bounding with most-fractional branching and a
//! 1-first branch order (assignments tend to be profitable, so fixing a
//! variable *in* finds incumbents early).

use rideshare_types::{MarketError, Result};

use crate::model::{Cmp, LinearProgram, Sense};

/// Tolerance within which a value counts as integral.
const INT_TOL: f64 = 1e-6;

/// A 0/1 branch-and-bound solver over a [`LinearProgram`].
///
/// Variables listed as binary are constrained to `{0, 1}`; all other
/// variables stay continuous non-negative (a *mixed* program). The
/// objective must be a maximization (the framework's formulations all are).
///
/// # Examples
///
/// ```
/// use rideshare_lp::{BranchAndBound, Cmp, LinearProgram};
///
/// // 0/1 knapsack: max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8.
/// let mut lp = LinearProgram::maximize();
/// let a = lp.add_var("a", 10.0);
/// let b = lp.add_var("b", 6.0);
/// let c = lp.add_var("c", 4.0);
/// lp.add_constraint(vec![(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 8.0);
/// let solver = BranchAndBound::new(lp, vec![a, b, c]);
/// let sol = solver.solve().unwrap();
/// assert!((sol.objective - 14.0).abs() < 1e-6); // a + c
/// ```
#[derive(Clone, Debug)]
pub struct BranchAndBound {
    lp: LinearProgram,
    binary_vars: Vec<usize>,
    node_limit: usize,
}

/// Result of a branch-and-bound solve.
#[derive(Clone, Debug)]
pub struct MilpSolution {
    /// Best integral objective found.
    pub objective: f64,
    /// Variable values of the incumbent.
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// `true` if the search ran to completion (the incumbent is optimal);
    /// `false` if the node limit stopped it early (incumbent is a lower
    /// bound only).
    pub proven_optimal: bool,
}

impl BranchAndBound {
    /// Creates a solver; `binary_vars` lists the variables restricted to
    /// `{0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics if the LP is a minimization or if a binary var is out of
    /// range.
    #[must_use]
    pub fn new(lp: LinearProgram, binary_vars: Vec<usize>) -> Self {
        assert!(
            matches!(lp.sense, Sense::Maximize),
            "branch-and-bound requires a maximization problem"
        );
        for &v in &binary_vars {
            assert!(v < lp.num_vars(), "binary var {v} out of range");
        }
        Self {
            lp,
            binary_vars,
            node_limit: 200_000,
        }
    }

    /// Caps the number of explored nodes (default 200 000).
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Infeasible`] when no integral solution exists,
    /// and propagates LP solver errors from relaxation solves.
    pub fn solve(&self) -> Result<MilpSolution> {
        // Root LP: original problem + x ≤ 1 for binary vars.
        let mut root = self.lp.clone();
        for &v in &self.binary_vars {
            root.add_constraint(vec![(v, 1.0)], Cmp::Le, 1.0);
        }

        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut nodes = 0usize;
        let mut truncated = false;
        // DFS stack of partial fixings (var, value).
        let mut stack: Vec<Vec<(usize, f64)>> = vec![Vec::new()];

        while let Some(fixings) = stack.pop() {
            if nodes >= self.node_limit {
                truncated = true;
                break;
            }
            nodes += 1;

            let mut node_lp = root.clone();
            for &(v, val) in &fixings {
                node_lp.add_constraint(vec![(v, 1.0)], Cmp::Eq, val);
            }
            let relax = match node_lp.solve() {
                Ok(s) => s,
                Err(MarketError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            if let Some((best, _)) = &incumbent {
                if relax.objective <= *best + INT_TOL {
                    continue; // bound: cannot beat the incumbent
                }
            }
            // Most-fractional binary variable.
            let frac = self
                .binary_vars
                .iter()
                .map(|&v| (v, (relax.values[v] - relax.values[v].round()).abs()))
                .filter(|(_, f)| *f > INT_TOL)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractionality"));
            match frac {
                None => {
                    // Integral on all binary vars → candidate incumbent.
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|(best, _)| relax.objective > *best + INT_TOL);
                    if better {
                        incumbent = Some((relax.objective, relax.values));
                    }
                }
                Some((v, _)) => {
                    // 0-branch pushed first so the 1-branch is explored
                    // first (LIFO): profitable assignments find incumbents
                    // sooner.
                    let mut zero = fixings.clone();
                    zero.push((v, 0.0));
                    stack.push(zero);
                    let mut one = fixings;
                    one.push((v, 1.0));
                    stack.push(one);
                }
            }
        }

        match incumbent {
            Some((objective, values)) => Ok(MilpSolution {
                objective,
                values,
                nodes_explored: nodes,
                proven_optimal: !truncated,
            }),
            None if truncated => Err(MarketError::IterationLimit {
                limit: self.node_limit,
            }),
            None => Err(MarketError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinearProgram};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn knapsack() {
        // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8 → a + c = 14
        // (LP relaxation would take a + 3/4 b = 14.5).
        let mut lp = LinearProgram::maximize();
        let a = lp.add_var("a", 10.0);
        let b = lp.add_var("b", 6.0);
        let c = lp.add_var("c", 4.0);
        lp.add_constraint(vec![(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 8.0);
        let sol = BranchAndBound::new(lp, vec![a, b, c]).solve().unwrap();
        assert_close(sol.objective, 14.0);
        assert_close(sol.values[a], 1.0);
        assert_close(sol.values[b], 0.0);
        assert_close(sol.values[c], 1.0);
        assert!(sol.proven_optimal);
    }

    #[test]
    fn odd_cycle_packing_integrality_gap() {
        // LP optimum 1.5 (see PackingLp test); ILP optimum is 1.
        let mut lp = LinearProgram::maximize();
        let c1 = lp.add_var("c1", 1.0);
        let c2 = lp.add_var("c2", 1.0);
        let c3 = lp.add_var("c3", 1.0);
        lp.add_constraint(vec![(c1, 1.0), (c3, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(c1, 1.0), (c2, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(c2, 1.0), (c3, 1.0)], Cmp::Le, 1.0);
        let sol = BranchAndBound::new(lp, vec![c1, c2, c3]).solve().unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn already_integral_root() {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 2.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        let sol = BranchAndBound::new(lp, vec![x]).solve().unwrap();
        assert_close(sol.objective, 2.0);
        assert_eq!(sol.nodes_explored, 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 3x + y, x binary, y continuous; x + y <= 1.5 → x=1, y=0.5.
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 3.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.5);
        let sol = BranchAndBound::new(lp, vec![x]).solve().unwrap();
        assert_close(sol.objective, 3.5);
        assert_close(sol.values[x], 1.0);
        assert_close(sol.values[y], 0.5);
    }

    #[test]
    fn infeasible_milp() {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        // x binary can be at most 1 → infeasible.
        let res = BranchAndBound::new(lp, vec![x]).solve();
        assert!(matches!(res, Err(MarketError::Infeasible)));
    }

    #[test]
    fn equality_forces_fractional_infeasibility() {
        // x + y = 1.5 with both binary → infeasible.
        let mut lp = LinearProgram::maximize();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 1.5);
        let res = BranchAndBound::new(lp, vec![x, y]).solve();
        assert!(matches!(res, Err(MarketError::Infeasible)));
    }

    #[test]
    fn node_limit_reports_truncation() {
        // A 12-item knapsack with correlated weights explores many nodes.
        let mut lp = LinearProgram::maximize();
        let vars: Vec<_> = (0..12)
            .map(|i| lp.add_var(format!("x{i}"), 10.0 + (i as f64)))
            .collect();
        let coeffs: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 11.0 + (i as f64)))
            .collect();
        lp.add_constraint(coeffs, Cmp::Le, 40.0);
        let sol = BranchAndBound::new(lp, vars).with_node_limit(3).solve();
        // With only 3 nodes we either found some incumbent (not proven) or
        // hit the limit with none.
        match sol {
            Ok(s) => assert!(!s.proven_optimal),
            Err(e) => assert!(matches!(e, MarketError::IterationLimit { .. })),
        }
    }

    #[test]
    #[should_panic(expected = "maximization")]
    fn rejects_minimization() {
        let lp = LinearProgram::minimize();
        let _ = BranchAndBound::new(lp, vec![]);
    }

    #[test]
    fn larger_assignment_milp() {
        // 4x4 assignment with integral LP: B&B should agree with LP at root.
        let profits = [
            [9.0, 2.0, 7.0, 8.0],
            [6.0, 4.0, 3.0, 7.0],
            [5.0, 8.0, 1.0, 8.0],
            [7.0, 6.0, 9.0, 4.0],
        ];
        let mut lp = LinearProgram::maximize();
        let mut vars = [[0usize; 4]; 4];
        for (i, row) in profits.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                vars[i][j] = lp.add_var(format!("a{i}{j}"), p);
            }
        }
        for (i, row) in vars.iter().enumerate() {
            lp.add_constraint(row.iter().map(|&v| (v, 1.0)).collect(), Cmp::Le, 1.0);
            lp.add_constraint((0..4).map(|j| (vars[j][i], 1.0)).collect(), Cmp::Le, 1.0);
        }
        let all: Vec<usize> = vars.iter().flatten().copied().collect();
        let sol = BranchAndBound::new(lp, all).solve().unwrap();
        // Optimal assignment: (0,0)=9? try known optimum 9+7+8+9=33:
        // rows 0→0, 1→3, 2→1, 3→2: 9 + 7 + 8 + 9 = 33.
        assert_close(sol.objective, 33.0);
    }
}
