//! A warm-startable simplex specialised to packing LPs, the master problem
//! of the column-generation upper bound `Z_f*`.
//!
//! The problem shape is `max Σ c_j f_j` subject to `Σ_{j: r ∈ support(j)}
//! f_j ≤ 1` for every row `r`, `f ≥ 0` — exactly the paper's path
//! formulation (Eq. 9–10): one row per driver ("each driver may choose 1 or
//! 0 task list", 10a relaxed to `≤ 1`) and one row per task ("all the paths
//! chosen are node-disjoint", 10b), one column per path.
//!
//! The tableau is stored **column-major** with the slack block kept
//! explicitly; since the slack columns are the running image of `B⁻¹`,
//! appending a generated path column costs `O(m·|support|)` and
//! re-optimisation resumes from the current (still feasible) basis instead
//! of restarting — the property that makes column generation practical.

use rideshare_types::{MarketError, Result};

const RC_EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;
/// Per-row RHS perturbation step (see [`PackingLp::new`]).
const PERTURBATION: f64 = 1e-7;

/// A packing linear program with dynamically generated columns.
///
/// # Examples
///
/// ```
/// use rideshare_lp::PackingLp;
///
/// // Two rows; columns {0}, {1}, {0,1}.
/// let mut lp = PackingLp::new(2);
/// let a = lp.add_column(3.0, &[0]);
/// let b = lp.add_column(4.0, &[1]);
/// let both = lp.add_column(5.0, &[0, 1]);
/// let obj = lp.optimize().unwrap();
/// assert!((obj - 7.0).abs() < 1e-4); // pick a and b, not the bundle
/// assert!((lp.primal(a) - 1.0).abs() < 1e-4);
/// assert!(lp.primal(both).abs() < 1e-4);
/// ```
#[derive(Clone, Debug)]
pub struct PackingLp {
    rows: usize,
    /// Internal columns: the first `rows` are slacks, the rest structural.
    /// `cols[k]` is the tableau image `B⁻¹ a_k` of column `k`.
    cols: Vec<Vec<f64>>,
    /// Objective row in `z_j − c_j` form, one entry per internal column.
    obj: Vec<f64>,
    /// Phase-2 cost of each internal column (slacks cost 0).
    costs: Vec<f64>,
    rhs: Vec<f64>,
    /// `basis[i]` = internal column basic in row `i`.
    basis: Vec<usize>,
    /// External id → internal index (None once purged).
    ext2int: Vec<Option<usize>>,
    /// Internal index → external id (`usize::MAX` for slacks).
    int2ext: Vec<usize>,
    pivots: usize,
}

impl PackingLp {
    /// Creates an empty packing LP with `rows` capacity-one rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    #[must_use]
    pub fn new(rows: usize) -> Self {
        assert!(rows > 0, "packing LP needs at least one row");
        let mut cols = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut c = vec![0.0; rows];
            c[r] = 1.0;
            cols.push(c);
        }
        // Lexicographic-style anti-degeneracy perturbation: markets with
        // many identical drivers make the unperturbed LP massively
        // degenerate and the simplex stalls for hundreds of thousands of
        // pivots. Nudging each RHS up by a distinct tiny amount breaks the
        // ties; since capacities only grow, the perturbed optimum remains a
        // valid upper bound, inflated by at most `Σ yᵢ·εᵢ` (≲ 1e-4 relative
        // on realistic instances).
        let rhs = (0..rows)
            .map(|i| 1.0 + (i as f64 + 1.0) * PERTURBATION)
            .collect();
        Self {
            rows,
            cols,
            obj: vec![0.0; rows],
            costs: vec![0.0; rows],
            rhs,
            basis: (0..rows).collect(),
            ext2int: Vec::new(),
            int2ext: vec![usize::MAX; rows],
            pivots: 0,
        }
    }

    /// Number of constraint rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of structural (non-slack) columns ever added and not purged.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.cols.len() - self.rows
    }

    /// Current dual price of each row (meaningful after [`Self::optimize`]).
    #[must_use]
    pub fn duals(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.obj[r]).collect()
    }

    /// Current primal value of an external column (0 if purged).
    ///
    /// # Panics
    ///
    /// Panics if `col` was never returned by [`Self::add_column`].
    #[must_use]
    pub fn primal(&self, col: usize) -> f64 {
        match self.ext2int[col] {
            None => 0.0,
            Some(k) => self
                .basis
                .iter()
                .position(|&b| b == k)
                .map_or(0.0, |i| self.rhs[i]),
        }
    }

    /// Current objective value `Σ c_B · rhs`.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.rhs)
            .map(|(&b, &x)| self.costs[b] * x)
            .sum()
    }

    /// Adds a structural column with the given objective cost and 0/1 row
    /// support, returning its external id.
    ///
    /// `support` must contain strictly increasing row indices `< rows`.
    ///
    /// # Panics
    ///
    /// Panics if `support` is unsorted, contains duplicates, or references a
    /// row out of range.
    pub fn add_column(&mut self, cost: f64, support: &[usize]) -> usize {
        assert!(
            support.windows(2).all(|w| w[0] < w[1]),
            "support must be strictly increasing"
        );
        if let Some(&last) = support.last() {
            assert!(last < self.rows, "support row {last} out of range");
        }
        // Tableau image: B⁻¹ a = Σ_{r ∈ support} (B⁻¹ e_r) — the slack
        // columns hold exactly those images.
        let mut col = vec![0.0; self.rows];
        let mut z = 0.0;
        for &r in support {
            for (c, s) in col.iter_mut().zip(&self.cols[r]) {
                *c += s;
            }
            z += self.obj[r]; // slack obj entries are the duals y_r
        }
        let ext = self.ext2int.len();
        let int = self.cols.len();
        self.cols.push(col);
        self.obj.push(z - cost);
        self.costs.push(cost);
        self.ext2int.push(Some(int));
        self.int2ext.push(ext);
        ext
    }

    /// Reduced cost (`c_j − y·a_j`) a *candidate* column would have if added
    /// now. Positive means adding it can improve the objective.
    #[must_use]
    pub fn candidate_reduced_cost(&self, cost: f64, support: &[usize]) -> f64 {
        let y_dot_a: f64 = support.iter().map(|&r| self.obj[r]).sum();
        cost - y_dot_a
    }

    /// Runs primal simplex to optimality from the current basis.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::IterationLimit`] if the pivot budget is
    /// exhausted. Packing LPs are always feasible (all-slack) and bounded
    /// (each column's value is capped by its rows), so no other failure is
    /// possible on well-formed input; unboundedness is reported as
    /// [`MarketError::Unbounded`] defensively.
    pub fn optimize(&mut self) -> Result<f64> {
        let max_pivots = self.pivots + 400 * (self.rows + self.cols.len()) + 50_000;
        let dantzig_budget = self.pivots + 100 * (self.rows + self.cols.len()) + 10_000;
        loop {
            if self.pivots > max_pivots {
                return Err(MarketError::IterationLimit { limit: max_pivots });
            }
            let bland = self.pivots > dantzig_budget;
            let entering = if bland {
                (0..self.cols.len()).find(|&j| self.obj[j] < -RC_EPS)
            } else {
                let mut best = None;
                let mut best_val = -RC_EPS;
                for (j, &o) in self.obj.iter().enumerate() {
                    if o < best_val {
                        best_val = o;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(j) = entering else {
                return Ok(self.objective());
            };
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.rows {
                let a = self.cols[j][i];
                if a > PIVOT_EPS {
                    let ratio = self.rhs[i] / a;
                    let better = match leave {
                        None => true,
                        Some((bi, br)) => {
                            ratio < br - 1e-12
                                || (ratio < br + 1e-12 && self.basis[i] < self.basis[bi])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((r, _)) = leave else {
                return Err(MarketError::Unbounded);
            };
            self.pivot(r, j);
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.cols[col][row];
        debug_assert!(piv.abs() > PIVOT_EPS);
        let inv = 1.0 / piv;
        // Snapshot of the (pre-scale) pivot column.
        let pivcol: Vec<f64> = self.cols[col].clone();
        let obj_factor = self.obj[col];
        let rhs_pivot = self.rhs[row] * inv;
        for (k, c) in self.cols.iter_mut().enumerate() {
            let row_val = c[row] * inv;
            for (i, (ci, &p)) in c.iter_mut().zip(&pivcol).enumerate() {
                if i == row {
                    continue;
                }
                *ci -= p * row_val;
                if ci.abs() < 1e-13 {
                    *ci = 0.0;
                }
            }
            c[row] = row_val;
            self.obj[k] -= obj_factor * row_val;
            if self.obj[k].abs() < 1e-13 {
                self.obj[k] = 0.0;
            }
        }
        for (i, (r, &p)) in self.rhs.iter_mut().zip(&pivcol).enumerate() {
            if i != row {
                *r -= p * rhs_pivot;
                if r.abs() < 1e-12 {
                    *r = 0.0;
                }
            }
        }
        self.rhs[row] = rhs_pivot;
        self.basis[row] = col;
    }

    /// Drops non-basic structural columns whose reduced cost is worse than
    /// `threshold` (i.e. `z_j − c_j > threshold`), shrinking the tableau.
    ///
    /// Purged columns report primal value 0 forever; column generation will
    /// simply regenerate them if they become attractive again.
    pub fn purge(&mut self, threshold: f64) {
        let basic: std::collections::HashSet<usize> = self.basis.iter().copied().collect();
        let mut keep: Vec<usize> = Vec::with_capacity(self.cols.len());
        for k in 0..self.cols.len() {
            let is_slack = k < self.rows;
            if is_slack || basic.contains(&k) || self.obj[k] <= threshold {
                keep.push(k);
            } else {
                self.ext2int[self.int2ext[k]] = None;
            }
        }
        if keep.len() == self.cols.len() {
            return;
        }
        let mut remap = vec![usize::MAX; self.cols.len()];
        for (new_k, &old_k) in keep.iter().enumerate() {
            remap[old_k] = new_k;
        }
        let take = |v: &mut Vec<_>| {
            let mut out = Vec::with_capacity(keep.len());
            for &old_k in &keep {
                out.push(std::mem::take(&mut v[old_k]));
            }
            *v = out;
        };
        take(&mut self.cols);
        self.obj = keep.iter().map(|&k| self.obj[k]).collect();
        self.costs = keep.iter().map(|&k| self.costs[k]).collect();
        self.int2ext = keep.iter().map(|&k| self.int2ext[k]).collect();
        for b in &mut self.basis {
            *b = remap[*b];
            debug_assert_ne!(*b, usize::MAX, "basic column purged");
        }
        for e in &mut self.ext2int {
            if let Some(k) = *e {
                *e = if remap[k] == usize::MAX {
                    None
                } else {
                    Some(remap[k])
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        // Tolerance accounts for the anti-degeneracy RHS perturbation.
        assert!((a - b).abs() < 1e-4, "expected {b}, got {a}");
    }

    #[test]
    fn empty_lp_objective_zero() {
        let mut lp = PackingLp::new(3);
        assert_close(lp.optimize().unwrap(), 0.0);
        assert_eq!(lp.duals(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn picks_disjoint_columns_over_bundle() {
        let mut lp = PackingLp::new(2);
        let a = lp.add_column(3.0, &[0]);
        let b = lp.add_column(4.0, &[1]);
        let both = lp.add_column(5.0, &[0, 1]);
        assert_close(lp.optimize().unwrap(), 7.0);
        assert_close(lp.primal(a), 1.0);
        assert_close(lp.primal(b), 1.0);
        assert_close(lp.primal(both), 0.0);
    }

    #[test]
    fn fractional_optimum() {
        // Three rows, columns {0,1}, {1,2}, {0,2} each worth 1:
        // LP optimum is 1.5 with every column at 1/2 (odd cycle).
        let mut lp = PackingLp::new(3);
        let c1 = lp.add_column(1.0, &[0, 1]);
        let c2 = lp.add_column(1.0, &[1, 2]);
        let c3 = lp.add_column(1.0, &[0, 2]);
        assert_close(lp.optimize().unwrap(), 1.5);
        for c in [c1, c2, c3] {
            assert_close(lp.primal(c), 0.5);
        }
    }

    #[test]
    fn warm_start_after_adding_column() {
        let mut lp = PackingLp::new(2);
        let a = lp.add_column(3.0, &[0]);
        assert_close(lp.optimize().unwrap(), 3.0);
        // A better column arrives for row 0: re-optimisation swaps it in.
        let b = lp.add_column(5.0, &[0]);
        assert_close(lp.optimize().unwrap(), 5.0);
        assert_close(lp.primal(a), 0.0);
        assert_close(lp.primal(b), 1.0);
    }

    #[test]
    fn duals_certify_optimality() {
        let mut lp = PackingLp::new(2);
        lp.add_column(3.0, &[0]);
        lp.add_column(4.0, &[1]);
        lp.add_column(5.0, &[0, 1]);
        lp.optimize().unwrap();
        let y = lp.duals();
        // Dual feasibility: y covers every column's cost.
        assert!(y[0] + 1e-9 >= 3.0);
        assert!(y[1] + 1e-9 >= 4.0);
        assert!(y[0] + y[1] + 1e-9 >= 5.0);
        // Strong duality: Σy = objective (all rows binding here).
        assert_close(y[0] + y[1], 7.0);
        // Candidate reduced costs agree with the duals.
        assert_close(lp.candidate_reduced_cost(6.0, &[0]), 6.0 - y[0]);
    }

    #[test]
    fn candidate_reduced_cost_guides_generation() {
        let mut lp = PackingLp::new(2);
        lp.add_column(3.0, &[0]);
        lp.optimize().unwrap();
        // Row 1 is uncovered: a column there has full positive reduced cost.
        assert_close(lp.candidate_reduced_cost(2.0, &[1]), 2.0);
        // Row 0 priced at 3: a cost-2 column there is unattractive.
        assert!(lp.candidate_reduced_cost(2.0, &[0]) < 0.0);
    }

    #[test]
    fn purge_drops_only_unattractive_nonbasic() {
        let mut lp = PackingLp::new(2);
        let a = lp.add_column(3.0, &[0]);
        let b = lp.add_column(1.0, &[0]); // dominated
        lp.optimize().unwrap();
        assert_eq!(lp.num_columns(), 2);
        lp.purge(0.5);
        assert_eq!(lp.num_columns(), 1);
        assert_close(lp.primal(a), 1.0);
        assert_close(lp.primal(b), 0.0); // purged → 0
                                         // Still solvable and correct after purge.
        let c = lp.add_column(4.0, &[1]);
        assert_close(lp.optimize().unwrap(), 7.0);
        assert_close(lp.primal(c), 1.0);
    }

    #[test]
    fn empty_support_column_with_positive_cost() {
        // A column using no rows is free profit; it enters unboundedly
        // unless capped — packing rows don't cap it, so expect Unbounded.
        let mut lp = PackingLp::new(1);
        lp.add_column(1.0, &[]);
        assert!(matches!(lp.optimize(), Err(MarketError::Unbounded)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_support() {
        let mut lp = PackingLp::new(3);
        lp.add_column(1.0, &[2, 1]);
    }

    #[test]
    fn larger_random_instance_matches_dense_simplex() {
        use crate::{Cmp, LinearProgram};
        // Cross-validate PackingLp against the general simplex on a
        // deterministic pseudo-random packing instance.
        let rows = 12;
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut packing = PackingLp::new(rows);
        let mut dense = LinearProgram::maximize();
        let mut row_members: Vec<Vec<usize>> = vec![Vec::new(); rows];
        for j in 0..40 {
            let cost = 1.0 + 9.0 * next();
            let mut support: Vec<usize> = (0..rows).filter(|_| next() < 0.25).collect();
            if support.is_empty() {
                support.push(j % rows);
            }
            packing.add_column(cost, &support);
            let v = dense.add_var(format!("c{j}"), cost);
            for &r in &support {
                row_members[r].push(v);
            }
        }
        for members in row_members {
            let coeffs = members.into_iter().map(|v| (v, 1.0)).collect();
            dense.add_constraint(coeffs, Cmp::Le, 1.0);
        }
        let packing_obj = packing.optimize().unwrap();
        let dense_obj = dense.solve().unwrap().objective;
        // The packing solver's RHS perturbation admits a small one-sided
        // inflation; it must never fall below the unperturbed optimum.
        assert!(
            packing_obj + 1e-9 >= dense_obj && packing_obj - dense_obj < 1e-3,
            "packing {packing_obj} vs dense {dense_obj}"
        );
    }
}
