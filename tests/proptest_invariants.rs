//! Property-based tests of the framework's core invariants.

use proptest::prelude::*;

use rideshare::graph::Dag;
use rideshare::lp::{Cmp, LinearProgram, PackingLp};
use rideshare::prelude::*;
use rideshare::trace::{trips_from_csv, trips_to_csv};

// ---------------------------------------------------------------------------
// Money / time arithmetic.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn money_addition_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let (x, y) = (Money::new(a), Money::new(b));
        prop_assert!((x + y).approx_eq(y + x));
        prop_assert!((x - y).approx_eq(-(y - x)));
    }

    #[test]
    fn money_sum_matches_fold(xs in proptest::collection::vec(-1e4f64..1e4, 0..50)) {
        let total: Money = xs.iter().map(|&v| Money::new(v)).sum();
        let fold = xs.iter().fold(0.0, |acc, v| acc + v);
        prop_assert!((total.as_f64() - fold).abs() < 1e-6);
    }

    #[test]
    fn timestamp_delta_round_trip(t in -1_000_000i64..1_000_000, d in -1_000_000i64..1_000_000) {
        let ts = Timestamp::from_secs(t);
        let delta = TimeDelta::from_secs(d);
        prop_assert_eq!((ts + delta) - delta, ts);
        prop_assert_eq!((ts + delta) - ts, delta);
    }
}

// ---------------------------------------------------------------------------
// DAG longest path vs brute force on tiny random DAGs.
// ---------------------------------------------------------------------------

fn brute_force_best(dag: &Dag, source: usize, sink: usize) -> Option<f64> {
    // DFS over all paths (graphs here are ≤ 8 nodes).
    fn rec(dag: &Dag, cur: usize, sink: usize, acc: f64) -> Option<f64> {
        let acc = acc + dag.node_weight(cur);
        if cur == sink {
            return Some(acc);
        }
        let mut best: Option<f64> = None;
        for (next, w) in dag.out_edges(cur) {
            if let Some(v) = rec(dag, next, sink, acc + w) {
                best = Some(best.map_or(v, |b: f64| b.max(v)));
            }
        }
        best
    }
    rec(dag, source, sink, 0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn dag_dp_matches_brute_force(
        n in 2usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8, -5.0f64..5.0), 0..20),
        weights in proptest::collection::vec(-5.0f64..5.0, 8),
    ) {
        let mut dag = Dag::new(n);
        for (i, w) in weights.iter().take(n).enumerate() {
            dag.set_node_weight(i, *w);
        }
        for (a, b, w) in edges {
            let (a, b) = (a % n, b % n);
            // Keep it acyclic by orienting edges upward.
            if a < b {
                dag.add_edge(a, b, w);
            }
        }
        let dp = dag.max_profit_path(0, n - 1);
        let brute = brute_force_best(&dag, 0, n - 1);
        match (dp, brute) {
            (None, None) => {}
            (Some(p), Some(b)) => prop_assert!((p.profit - b).abs() < 1e-9,
                "dp {} vs brute {b}", p.profit),
            (dp, brute) => prop_assert!(false, "dp {dp:?} vs brute {brute:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Packing LP vs dense simplex on random packing instances.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn packing_lp_matches_dense_simplex(
        rows in 2usize..8,
        cols in proptest::collection::vec(
            (0.1f64..10.0, proptest::collection::vec(any::<bool>(), 8)),
            1..16,
        ),
    ) {
        let mut packing = PackingLp::new(rows);
        let mut dense = LinearProgram::maximize();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); rows];
        for (j, (cost, mask)) in cols.iter().enumerate() {
            let mut support: Vec<usize> =
                (0..rows).filter(|&r| mask[r]).collect();
            if support.is_empty() {
                support.push(j % rows);
            }
            packing.add_column(*cost, &support);
            let v = dense.add_var(format!("c{j}"), *cost);
            for &r in &support {
                members[r].push(v);
            }
        }
        for m in members {
            let coeffs = m.into_iter().map(|v| (v, 1.0)).collect();
            dense.add_constraint(coeffs, Cmp::Le, 1.0);
        }
        let p = packing.optimize().unwrap();
        let d = dense.solve().unwrap().objective;
        // One-sided perturbation bound.
        prop_assert!(p + 1e-9 >= d && p - d < 1e-3, "packing {p} vs dense {d}");
    }
}

// ---------------------------------------------------------------------------
// Trace and market invariants on random configurations.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn generated_markets_always_validate(
        seed in 0u64..1000,
        tasks in 1usize..40,
        drivers in 0usize..10,
        hitch in any::<bool>(),
    ) {
        let model = if hitch { DriverModel::Hitchhiking } else { DriverModel::HomeWorkHome };
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, model)
            .generate();
        for t in &trace.trips {
            prop_assert!(t.validate().is_ok());
        }
        for d in &trace.drivers {
            prop_assert!(d.validate().is_ok());
        }
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let greedy = solve_greedy(&market, Objective::Profit);
        prop_assert!(greedy.assignment.validate(&market).is_ok());
        // Greedy profit is never negative (it only commits positive paths).
        prop_assert!(
            !greedy
                .assignment
                .objective_value(&market, Objective::Profit)
                .is_strictly_negative()
        );

        let sim = Simulator::new(&market);
        let r = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        prop_assert!(validate_online(&market, &r.assignment).is_ok());
    }

    #[test]
    fn trip_csv_round_trips(seed in 0u64..500, tasks in 1usize..30) {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .generate();
        let back = trips_from_csv(&trips_to_csv(&trace.trips)).unwrap();
        prop_assert_eq!(back.len(), trace.trips.len());
        for (a, b) in trace.trips.iter().zip(&back) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.publish_time, b.publish_time);
            prop_assert_eq!(a.duration, b.duration);
            prop_assert!(a.origin.haversine_km(b.origin) < 0.01);
        }
    }
}

// ---------------------------------------------------------------------------
// Geometry invariants.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn haversine_triangle_inequality(
        lat_a in 41.0f64..41.4, lon_a in -8.8f64..-8.4,
        lat_b in 41.0f64..41.4, lon_b in -8.8f64..-8.4,
        lat_c in 41.0f64..41.4, lon_c in -8.8f64..-8.4,
    ) {
        let a = GeoPoint::new(lat_a, lon_a);
        let b = GeoPoint::new(lat_b, lon_b);
        let c = GeoPoint::new(lat_c, lon_c);
        prop_assert!(a.haversine_km(c) <= a.haversine_km(b) + b.haversine_km(c) + 1e-9);
        prop_assert!((a.haversine_km(b) - b.haversine_km(a)).abs() < 1e-12);
    }

    #[test]
    fn speed_model_monotone_in_distance(
        km1 in 0.0f64..30.0,
        km2 in 0.0f64..30.0,
    ) {
        let m = SpeedModel::urban();
        let (near, far) = if km1 < km2 { (km1, km2) } else { (km2, km1) };
        prop_assert!(m.travel_time_for_km(near) <= m.travel_time_for_km(far));
        prop_assert!(m.cost_for_km(near) <= m.cost_for_km(far));
    }
}
