//! Property tests for the batched dispatcher (`BatchEngine`).
//!
//! Three doc claims of `rideshare-online`'s `batch` module become
//! executable here:
//!
//! 1. every hold window `W ≥ 0`, under either matcher, yields a
//!    `validate_online_result`-clean outcome — online-feasible routes,
//!    full task accounting, **and dispatch causality** (no departure
//!    precedes its dispatch decision; the validator replays every route
//!    with decision-time departures and demands exact agreement),
//! 2. with `W = 0` and distinct publish times (a zero window still batches
//!    same-instant ties), the batched dispatcher degenerates to the
//!    per-task maxMargin simulator exactly — same dispatch vector, same
//!    profit (also pinned by a fixed-seed regression test below), and
//! 3. grid-pruned candidate generation changes nothing but wall-time: the
//!    full-scan and grid paths produce byte-identical dispatches and
//!    events for random traces and windows.

use proptest::prelude::*;

use rideshare::online::{run_batched, run_batched_with, BatchOptions, MatcherKind};
use rideshare::prelude::*;

fn porto_market(seed: u64, tasks: usize, drivers: usize, hitch: bool) -> Market {
    let model = if hitch {
        DriverModel::Hitchhiking
    } else {
        DriverModel::HomeWorkHome
    };
    let trace = TraceConfig::porto()
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, model)
        .generate();
    Market::from_trace(&trace, &MarketBuildOptions::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_window_is_feasible_and_causal(
        seed in 0u64..10_000,
        tasks in 1usize..60,
        drivers in 0usize..8,
        hitch in any::<bool>(),
        window_mins in 0i64..40,
        optimal in any::<bool>(),
    ) {
        let market = porto_market(seed, tasks, drivers, hitch);
        let matcher = if optimal { MatcherKind::Optimal } else { MatcherKind::Greedy };
        let window = TimeDelta::from_mins(window_mins);
        let r = run_batched_with(&market, BatchOptions::with_window(window).matcher(matcher));
        // Feasibility + causality in one validator: routes replay cleanly
        // AND departing at each event's recorded decision time reproduces
        // each recorded arrival exactly.
        prop_assert!(validate_online_result(&market, &r).is_ok());
        prop_assert_eq!(r.served + r.rejected, market.num_tasks());
        prop_assert_eq!(r.served, r.assignment.served_count());
        for e in &r.events {
            let task = &market.tasks()[e.task.index()];
            // A task is decided within its own window, never before it is
            // published and never after its pickup deadline.
            prop_assert!(e.decision_time >= task.publish_time);
            prop_assert!(e.decision_time <= (task.publish_time + window).min(task.pickup_deadline));
            prop_assert!(e.arrival >= e.decision_time, "departure predates decision");
            prop_assert!(e.wait.is_non_negative());
        }
    }

    #[test]
    fn zero_window_degenerates_to_max_margin(
        seed in 0u64..10_000,
        tasks in 1usize..60,
        drivers in 0usize..8,
        hitch in any::<bool>(),
    ) {
        let market = porto_market(seed, tasks, drivers, hitch);
        // A zero window still merges same-second publishes into one batch,
        // where joint greedy matching may legitimately differ from
        // task-at-a-time dispatch — the doc claim is about the tie-free
        // case, so skip markets with publish-time collisions.
        let mut publishes: Vec<_> = market.tasks().iter().map(|t| t.publish_time).collect();
        publishes.sort();
        let distinct = publishes.windows(2).all(|w| w[0] != w[1]);
        if distinct {
            let batched = run_batched(&market, TimeDelta::ZERO);
            let instant = Simulator::new(&market)
                .run(&mut MaxMargin::new(), SimulationOptions::default());
            prop_assert_eq!(&batched.dispatch, &instant.dispatch);
            prop_assert_eq!(batched.served, instant.served);
            prop_assert_eq!(batched.rejected, instant.rejected);
            let pb = batched.total_profit(&market);
            let pi = instant.total_profit(&market);
            prop_assert!(pb.approx_eq(pi), "batched {pb} vs instant {pi}");
        }
    }

    #[test]
    fn grid_pruning_is_result_neutral(
        seed in 0u64..10_000,
        tasks in 1usize..60,
        drivers in 0usize..10,
        window_mins in 0i64..40,
        optimal in any::<bool>(),
    ) {
        let market = porto_market(seed, tasks, drivers, true);
        let matcher = if optimal { MatcherKind::Optimal } else { MatcherKind::Greedy };
        let base = BatchOptions::with_window(TimeDelta::from_mins(window_mins)).matcher(matcher);
        let scan = run_batched_with(&market, base);
        let grid = run_batched_with(&market, base.grid(true));
        prop_assert_eq!(&scan.dispatch, &grid.dispatch);
        prop_assert_eq!(&scan.events, &grid.events);
        prop_assert_eq!(scan.rejected, grid.rejected);
    }

    #[test]
    fn wider_windows_never_lose_feasibility(
        seed in 0u64..5_000,
        tasks in 1usize..50,
        drivers in 1usize..8,
    ) {
        // Monotonicity is not guaranteed for profit, but feasibility and
        // accounting must hold across the whole window sweep of one market.
        let market = porto_market(seed, tasks, drivers, true);
        for mins in [0i64, 1, 5, 15, 60] {
            let r = run_batched(&market, TimeDelta::from_mins(mins));
            prop_assert!(validate_online_result(&market, &r).is_ok(), "W = {mins}m");
            prop_assert_eq!(r.served + r.rejected, market.num_tasks());
        }
    }
}

/// Pinned regression (not a property): `W = 0` still degenerates to
/// per-task maxMargin on a fixed, distinct-publish-time market. If the
/// engine's window bucketing or the greedy matcher's tie-break ever drifts,
/// this fails before the sweep snapshot does.
#[test]
fn zero_window_regression_pin() {
    let market = porto_market(63, 150, 25, true);
    let mut publishes: Vec<_> = market.tasks().iter().map(|t| t.publish_time).collect();
    publishes.sort();
    assert!(
        publishes.windows(2).all(|w| w[0] != w[1]),
        "seed 63 must keep distinct publish times for this pin"
    );
    let batched = run_batched(&market, TimeDelta::ZERO);
    let instant = Simulator::new(&market).run(&mut MaxMargin::new(), SimulationOptions::default());
    assert_eq!(batched.dispatch, instant.dispatch);
    assert_eq!(batched.events, instant.events);
    assert_eq!(batched.served, instant.served);
    assert_eq!(batched.rejected, instant.rejected);
}
