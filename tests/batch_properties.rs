//! Property tests for the batched dispatcher (`run_batched`).
//!
//! Two doc claims of `rideshare-online`'s `batch` module become executable
//! here:
//!
//! 1. every hold window `W ≥ 0` yields a `validate_online`-clean
//!    assignment with full task accounting, and
//! 2. with `W = 0` and distinct publish times (a zero window still batches
//!    same-instant ties), the batched dispatcher degenerates to the
//!    per-task maxMargin simulator exactly — same dispatch vector, same
//!    profit.

use proptest::prelude::*;

use rideshare::online::run_batched;
use rideshare::prelude::*;

fn porto_market(seed: u64, tasks: usize, drivers: usize, hitch: bool) -> Market {
    let model = if hitch {
        DriverModel::Hitchhiking
    } else {
        DriverModel::HomeWorkHome
    };
    let trace = TraceConfig::porto()
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, model)
        .generate();
    Market::from_trace(&trace, &MarketBuildOptions::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_window_is_online_feasible(
        seed in 0u64..10_000,
        tasks in 1usize..60,
        drivers in 0usize..8,
        hitch in any::<bool>(),
        window_mins in 0i64..40,
    ) {
        let market = porto_market(seed, tasks, drivers, hitch);
        let r = run_batched(&market, TimeDelta::from_mins(window_mins));
        prop_assert!(validate_online(&market, &r.assignment).is_ok());
        prop_assert_eq!(r.served + r.rejected, market.num_tasks());
        prop_assert_eq!(r.served, r.assignment.served_count());
        prop_assert_eq!(
            r.dispatch.iter().filter(|d| d.is_some()).count(),
            r.served
        );
        // Batching may only delay a pickup by at most its own window plus
        // travel; waits stay non-negative in all cases.
        for e in &r.events {
            prop_assert!(e.wait.is_non_negative());
        }
    }

    #[test]
    fn zero_window_degenerates_to_max_margin(
        seed in 0u64..10_000,
        tasks in 1usize..60,
        drivers in 0usize..8,
        hitch in any::<bool>(),
    ) {
        let market = porto_market(seed, tasks, drivers, hitch);
        // A zero window still merges same-second publishes into one batch,
        // where joint greedy matching may legitimately differ from
        // task-at-a-time dispatch — the doc claim is about the tie-free
        // case, so skip markets with publish-time collisions.
        let mut publishes: Vec<_> = market.tasks().iter().map(|t| t.publish_time).collect();
        publishes.sort();
        let distinct = publishes.windows(2).all(|w| w[0] != w[1]);
        if distinct {
            let batched = run_batched(&market, TimeDelta::ZERO);
            let instant = Simulator::new(&market)
                .run(&mut MaxMargin::new(), SimulationOptions::default());
            prop_assert_eq!(&batched.dispatch, &instant.dispatch);
            prop_assert_eq!(batched.served, instant.served);
            prop_assert_eq!(batched.rejected, instant.rejected);
            let pb = batched.total_profit(&market);
            let pi = instant.total_profit(&market);
            prop_assert!(pb.approx_eq(pi), "batched {pb} vs instant {pi}");
        }
    }

    #[test]
    fn wider_windows_never_lose_feasibility(
        seed in 0u64..5_000,
        tasks in 1usize..50,
        drivers in 1usize..8,
    ) {
        // Monotonicity is not guaranteed for profit, but feasibility and
        // accounting must hold across the whole window sweep of one market.
        let market = porto_market(seed, tasks, drivers, true);
        for mins in [0i64, 1, 5, 15, 60] {
            let r = run_batched(&market, TimeDelta::from_mins(mins));
            prop_assert!(validate_online(&market, &r.assignment).is_ok(), "W = {mins}m");
            prop_assert_eq!(r.served + r.rejected, market.num_tasks());
        }
    }
}
