//! The tsdb record → query equivalence battery.
//!
//! A recorded store is not a second metrics pipeline: it is the same
//! exact integers, persisted. This suite pins that from three angles,
//! mirroring what `rtb_equivalence.rs` does for the binary trace hop:
//!
//! - **record/query ≡ accumulator** — replay the porto-regions catalog
//!   scenario through `{margin, nearest, batch-3m}` × shards `{1, 2, 4}`
//!   with a [`TsdbRecorder`] interposed; for every metric, the store's
//!   whole-range query total equals the in-memory [`StreamMetrics`]
//!   accumulator with exact `==` on the raw integer grid — no float ever
//!   enters the comparison,
//! - **shard invariance** — window boundaries land on the stream clock,
//!   so the recorded samples of every metric are *identical* across
//!   shard counts for a shard-stable policy,
//! - **golden store byte-pin** — `snapshots/golden_tsdb/` is a committed
//!   store recorded from the committed `golden_trace.rtb` corpus.
//!   Re-recording reproduces every file byte for byte (encoder/layout
//!   drift), the committed bytes open and query back to the committed
//!   canonical JSON `snapshots/golden_query.json` (decoder drift), and
//!   CI additionally replays + queries through the `rideshare` CLI and
//!   diffs the same JSON. Update both with
//!   `UPDATE_SNAPSHOTS=1 cargo test --test tsdb_equivalence`.
//!
//! Plus an `#[ignore]`d heavy acceptance run: a million-task multi-day
//! replay recorded and queried back exactly
//! (`cargo test --release --test tsdb_equivalence -- --ignored`).

use rideshare::bench::Scenario;
use rideshare::online::{wire_to_event, MatcherKind, ShardPolicySpec, StreamEngine};
use rideshare::prelude::*;
use rideshare::trace::rtb;
use rideshare::tsdb::codec::Sample;
use rideshare::tsdb::recorder::{
    METRIC_ACTIVE_DRIVERS, METRIC_DEADHEAD, METRIC_PROFIT, METRIC_REJECTED, METRIC_REVENUE,
    METRIC_SERVED, METRIC_WAIT_SECS,
};
use rideshare::tsdb::store::SeriesKey;
use rideshare::tsdb::{to_canonical_json, Agg, TsdbStore};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsdb-equiv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn policy_matrix() -> Vec<(&'static str, ShardPolicySpec)> {
    vec![
        ("margin", ShardPolicySpec::MaxMargin),
        ("nearest", ShardPolicySpec::Nearest { seed: 0 }),
        (
            "batch-3m",
            ShardPolicySpec::Batched {
                window: TimeDelta::from_mins(3),
                matcher: MatcherKind::Greedy,
            },
        ),
    ]
}

/// Replays the porto-regions catalog scenario with a recorder
/// interposed; returns the flushed store and the inner accumulator.
fn record_run(
    market: &Market,
    config: &TraceConfig,
    spec: ShardPolicySpec,
    label: &str,
    shards: usize,
    dir: &Path,
) -> (TsdbStore, StreamMetrics) {
    let store = TsdbStore::open(dir).expect("open store");
    let labels = RunLabels::new("porto-regions", label, config.region_boxes().len(), shards);
    let mut sink = TsdbRecorder::new(store, labels, StreamMetrics::hourly());
    if shards == 1 {
        let mut holder = spec.holder();
        let mut policy = holder.as_policy();
        let _ = replay_stream(
            market.speed(),
            market_events(market),
            &mut policy,
            StreamOptions::default(),
            &mut sink,
        );
    } else {
        let partitioner = BoxPartitioner::new(config.region_boxes());
        let _ = replay_sharded(
            market.speed(),
            market_events(market),
            spec,
            &partitioner,
            ShardOptions::new(shards).validate(false),
            &mut sink,
        );
    }
    let (store, metrics) = sink.finish().expect("recording must not error");
    (store.expect("store attached"), metrics)
}

/// Whole-range query total for one metric (0 when no sample recorded).
fn total_of(store: &TsdbStore, metric: &str) -> i128 {
    let q = RangeQuery {
        filter: LabelFilter::any().with("metric", metric).expect("filter"),
        from: i64::MIN,
        to: i64::MAX,
        step: 3600,
    };
    run_query(store, &q)
        .expect("query")
        .total
        .map_or(0, |t| t.sum)
}

/// The recorded samples of one metric, independent of the run labels.
fn samples_of(store: &TsdbStore, metric: &str) -> Vec<Sample> {
    let keys: Vec<SeriesKey> = store
        .series()
        .map(|(k, _)| k.clone())
        .filter(|k| k.metric == metric)
        .collect();
    assert!(
        keys.len() <= 1,
        "one run writes at most one {metric} series"
    );
    keys.first()
        .map(|k| store.read_series(k).expect("read series"))
        .unwrap_or_default()
}

const ALL_METRICS: [&str; 7] = [
    METRIC_SERVED,
    METRIC_REJECTED,
    METRIC_REVENUE,
    METRIC_PROFIT,
    METRIC_WAIT_SECS,
    METRIC_DEADHEAD,
    METRIC_ACTIVE_DRIVERS,
];

/// Exact `==` between the store's query totals and the in-memory
/// accumulator, on the raw integer grid.
fn assert_store_equals_metrics(store: &TsdbStore, metrics: &StreamMetrics, ctx: &str) {
    let pairs: [(&str, i128); 6] = [
        (
            METRIC_SERVED,
            i128::try_from(metrics.served()).expect("fits"),
        ),
        (
            METRIC_REJECTED,
            i128::try_from(metrics.rejected()).expect("fits"),
        ),
        (METRIC_REVENUE, metrics.revenue_raw()),
        (METRIC_PROFIT, metrics.profit_raw()),
        (METRIC_WAIT_SECS, i128::from(metrics.wait_secs_total())),
        (METRIC_DEADHEAD, metrics.deadhead_raw()),
    ];
    for (metric, want) in pairs {
        assert_eq!(total_of(store, metric), want, "{ctx}: Σ {metric}");
    }
    // The active-drivers gauge is non-decreasing, so its max (and last
    // sample) is the final accumulator value.
    let q = RangeQuery {
        filter: LabelFilter::any()
            .with("metric", METRIC_ACTIVE_DRIVERS)
            .expect("filter"),
        from: i64::MIN,
        to: i64::MAX,
        step: 3600,
    };
    let r = run_query(store, &q).expect("query");
    let got = r.total.map_or(0, |t| t.max);
    assert_eq!(
        got,
        i128::try_from(metrics.active_drivers()).expect("fits"),
        "{ctx}: max {METRIC_ACTIVE_DRIVERS}"
    );
}

/// The matrix pin: for every policy × shard count, querying the recorded
/// store reproduces the in-memory accumulator exactly, and the recorded
/// samples are identical across shard counts.
#[test]
fn recorded_store_matches_stream_metrics_across_policies_and_shards() {
    let scenario = Scenario::by_name("porto-regions").expect("catalog scenario");
    let config = scenario.trace_config().expect("trace-backed").clone();
    let market = scenario.build_market();

    for (label, spec) in policy_matrix() {
        let mut baseline: Option<Vec<(String, Vec<Sample>)>> = None;
        for shards in [1usize, 2, 4] {
            let ctx = format!("policy={label} shards={shards}");
            let dir = tmp_dir(&format!("{label}-{shards}"));
            let (store, metrics) = record_run(&market, &config, spec, label, shards, &dir);
            assert!(metrics.served() > 0, "{ctx}: degenerate run");
            assert_store_equals_metrics(&store, &metrics, &ctx);

            // Shard invariance: the recorded samples of every metric are
            // byte-identical across shard counts (labels differ only in
            // the shard count they record).
            let shape: Vec<(String, Vec<Sample>)> = ALL_METRICS
                .iter()
                .map(|m| ((*m).to_string(), samples_of(&store, m)))
                .collect();
            match &baseline {
                None => baseline = Some(shape),
                Some(want) => {
                    for ((metric, got), (_, expect)) in shape.iter().zip(want) {
                        assert_eq!(got, expect, "{ctx}: {metric} samples drifted vs 1 shard");
                    }
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Serving across day rollovers must not perturb the recording: the
/// daemon runs with a 2-hour day over a one-day trace, and the day hook
/// does exactly what `rideshare serve --tsdb-dir` does at each boundary
/// — `MetricsJournal::roll_day` plus a mid-run
/// [`TsdbRecorder::flush_store`]. The recorded store still reproduces
/// the cumulative accumulator with exact `==`, and its samples are
/// identical to a rollover-free recording of the same events.
#[test]
fn serve_day_rollover_preserves_recorded_equivalence() {
    let scenario = Scenario::by_name("porto-regions").expect("catalog scenario");
    let config = scenario.trace_config().expect("trace-backed").clone();
    let market = scenario.build_market();

    // Baseline: the same events recorded with no journal and no rollover.
    let base_dir = tmp_dir("rollover-base");
    let (base_store, base_metrics) = record_run(
        &market,
        &config,
        ShardPolicySpec::MaxMargin,
        "margin",
        1,
        &base_dir,
    );

    // Rollover run: serve daemon, 2-hour days, journal + recorder sink.
    let dir = tmp_dir("rollover");
    let store = TsdbStore::open(&dir).expect("open store");
    let labels = RunLabels::new("porto-regions", "margin", config.region_boxes().len(), 1);
    let mut sink = TsdbRecorder::new(store, labels, MetricsJournal::hourly());
    let daemon = ServeDaemon::new(
        market.speed(),
        ShardPolicySpec::MaxMargin,
        ServeConfig::new(1).day_length(TimeDelta::from_hours(2)),
    );
    let mut closed_days = 0usize;
    let outcome = daemon.run(
        &mut IterSource::new(market_events(&market).into_iter()),
        &mut sink,
        |_, _| {},
        |_, rec| {
            let _ = rec.inner_mut().roll_day();
            rec.flush_store().expect("mid-run flush at day boundary");
            closed_days += 1;
        },
    );
    assert!(outcome.error.is_none(), "serve run must drain cleanly");
    assert!(
        closed_days >= 2,
        "regression needs several rollovers, got {closed_days}"
    );

    let (rolled_store, journal) = sink.finish().expect("recording must not error");
    let rolled_store = rolled_store.expect("store attached");
    assert_eq!(journal.days_closed(), closed_days);
    let cumulative = journal.into_cumulative();

    // Rollovers never perturb the cumulative accumulator…
    assert_eq!(cumulative, base_metrics, "journal cumulative drifted");
    // …nor the recorded store: query totals still equal the accumulator
    // exactly, and every series matches the rollover-free recording
    // sample for sample.
    assert_store_equals_metrics(&rolled_store, &cumulative, "rolled");
    for metric in ALL_METRICS {
        assert_eq!(
            samples_of(&rolled_store, metric),
            samples_of(&base_store, metric),
            "{metric} samples drifted across day rollovers"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&base_dir);
}

/// Reopening a flushed store reads back exactly what was recorded —
/// the query result is identical before and after the disk round trip.
#[test]
fn reopened_store_queries_identically() {
    let scenario = Scenario::by_name("porto-regions").expect("catalog scenario");
    let config = scenario.trace_config().expect("trace-backed").clone();
    let market = scenario.build_market();
    let dir = tmp_dir("reopen");
    let (store, metrics) = record_run(
        &market,
        &config,
        ShardPolicySpec::MaxMargin,
        "margin",
        1,
        &dir,
    );
    let reopened = TsdbStore::open(&dir).expect("reopen");
    for metric in ALL_METRICS {
        assert_eq!(
            samples_of(&store, metric),
            samples_of(&reopened, metric),
            "{metric} drifted across reopen"
        );
    }
    assert_store_equals_metrics(&reopened, &metrics, "reopened");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Golden store fixture.
// ---------------------------------------------------------------------

/// The pinned query CI also runs through the CLI:
/// `rideshare query --tsdb <dir> --filter scenario=golden,metric=profit --canonical`.
fn golden_query() -> RangeQuery {
    RangeQuery {
        filter: LabelFilter::parse("scenario=golden,metric=profit").expect("filter"),
        from: i64::MIN,
        to: i64::MAX,
        step: 3600,
    }
}

/// Records the committed `golden_trace.rtb` corpus into `dir` exactly the
/// way `rideshare replay --input … --tsdb-dir … --tsdb-scenario golden`
/// does: same grid options, same policy, same labels.
fn record_golden(dir: &Path) -> TsdbStore {
    const GOLDEN: &[u8] = include_bytes!("snapshots/golden_trace.rtb");
    let config = TraceConfig::porto()
        .with_seed(7)
        .with_task_count(120)
        .with_driver_count(10, DriverModel::Hitchhiking)
        .with_regions(2);
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();

    let store = TsdbStore::open(dir).expect("open store");
    let labels = RunLabels::new("golden", "margin", 2, 1);
    let mut sink = TsdbRecorder::new(store, labels, StreamMetrics::hourly());
    let mut policy_holder = ShardPolicySpec::MaxMargin.holder();
    let mut policy = policy_holder.as_policy();
    let mut engine = StreamEngine::new(speed, StreamOptions::default().grid(bbox));
    for wire in rtb::read_events(GOLDEN).expect("committed corpus decodes") {
        if let Some(event) = wire_to_event(wire) {
            engine.push(event, &mut policy, &mut sink);
        }
    }
    let _ = engine.finish(&mut policy, &mut sink);
    let (store, _) = sink.finish().expect("record");
    store.expect("store attached")
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("golden_tsdb")
}

fn query_snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
        .join("golden_query.json")
}

/// Store files in a stable order (the index plus every series file).
fn store_files(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("fixture dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf8 name")
        })
        .collect();
    names.sort();
    names
}

/// Direction one: re-recording the committed corpus reproduces the
/// committed store byte for byte. Direction two: the committed store
/// opens and queries back to the committed canonical JSON. Run with
/// `UPDATE_SNAPSHOTS=1` to rewrite both after an intentional format
/// change (bump the codec/index/query schema version deliberately).
#[test]
fn golden_store_is_byte_pinned_both_ways() {
    let work = tmp_dir("golden");
    let store = record_golden(&work);
    let json = {
        let q = golden_query();
        let r = run_query(&store, &q).expect("query fresh store");
        to_canonical_json(&q, Agg::Sum, &r)
    };

    let fixture = fixture_dir();
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        let _ = std::fs::remove_dir_all(&fixture);
        std::fs::create_dir_all(&fixture).expect("create fixture dir");
        for name in store_files(&work) {
            std::fs::copy(work.join(&name), fixture.join(&name)).expect("copy fixture file");
        }
        std::fs::write(query_snapshot_path(), &json).expect("write query snapshot");
        let _ = std::fs::remove_dir_all(&work);
        return;
    }

    // Encoder direction: same corpus, same bytes — file set and content.
    assert_eq!(
        store_files(&work),
        store_files(&fixture),
        "recorded store writes a different file set than the committed fixture"
    );
    for name in store_files(&fixture) {
        let got = std::fs::read(work.join(&name)).expect("fresh file");
        let want = std::fs::read(fixture.join(&name)).expect("committed file");
        assert!(
            got == want,
            "{name} drifted from the committed golden store; \
             rerun with UPDATE_SNAPSHOTS=1 if intentional"
        );
    }

    // Decoder direction: the committed bytes open, validate, and query
    // back to the committed canonical JSON.
    let committed = TsdbStore::open(&fixture).expect("committed fixture must open cleanly");
    let q = golden_query();
    let r = run_query(&committed, &q).expect("query committed store");
    let committed_json = to_canonical_json(&q, Agg::Sum, &r);
    assert_eq!(committed_json, json, "fresh and committed stores disagree");
    let want = std::fs::read_to_string(query_snapshot_path()).expect("query snapshot");
    assert_eq!(
        committed_json, want,
        "canonical query output drifted from snapshots/golden_query.json; \
         rerun with UPDATE_SNAPSHOTS=1 if intentional"
    );
    let _ = std::fs::remove_dir_all(&work);
}

// ---------------------------------------------------------------------
// Heavy acceptance.
// ---------------------------------------------------------------------

/// A million tasks over multiple simulated days, recorded while
/// replaying, then queried back: every metric total exact-equal to the
/// accumulator, across a seal-boundary-heavy store (hundreds of chunks).
/// Release only: `cargo test --release --test tsdb_equivalence -- --ignored`.
#[test]
#[ignore = "heavy: 1M-task multi-day record+query, release only"]
fn million_task_record_and_query_round_trip() {
    let config = TraceConfig::porto()
        .with_seed(0)
        .with_task_count(1_000_000)
        .with_driver_count(450, DriverModel::Hitchhiking);
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());

    let dir = tmp_dir("million");
    let store = TsdbStore::open(&dir).expect("open store");
    let labels = RunLabels::new("porto-1m", "margin", 1, 1);
    let mut sink = TsdbRecorder::new(store, labels, StreamMetrics::hourly());
    let mut mm = MaxMargin::new();
    let mut policy = rideshare::online::StreamPolicy::Instant(&mut mm);
    let mut engine = StreamEngine::new(speed, StreamOptions::default().grid(bbox));
    for shift in stream.drivers() {
        engine.push(
            StreamEvent::DriverOnline(Driver::from(shift)),
            &mut policy,
            &mut sink,
        );
    }
    for trip in stream {
        engine.push(
            StreamEvent::TaskPublished(pricer.price(&trip)),
            &mut policy,
            &mut sink,
        );
    }
    let summary = engine.finish(&mut policy, &mut sink);
    assert_eq!(summary.tasks, 1_000_000);

    let (store, metrics) = sink.finish().expect("record");
    let store = store.expect("store attached");
    assert_store_equals_metrics(&store, &metrics, "1M-task");

    // The run spans days of stream time, so the served series crossed
    // many seal boundaries — the multi-chunk read path, exercised at
    // scale — and a reopened store agrees sample for sample.
    let served = samples_of(&store, METRIC_SERVED);
    assert!(
        served.len() > rideshare::tsdb::store::CHUNK_LEN,
        "expected a multi-chunk series, got {} samples",
        served.len()
    );
    let reopened = TsdbStore::open(&dir).expect("reopen");
    assert_eq!(samples_of(&reopened, METRIC_SERVED), served);
    assert_store_equals_metrics(&reopened, &metrics, "1M-task reopened");
    let _ = std::fs::remove_dir_all(&dir);
}
