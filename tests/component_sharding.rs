//! Oracle tests for the lossless disjoint-component decomposition: solving
//! per component and merging must equal solving the whole market — for the
//! greedy *and* for the LP upper bound — across workload shapes and thread
//! counts.

use proptest::prelude::*;

use rideshare::core::partition::map_sharded;
use rideshare::prelude::*;

#[test]
fn sharded_greedy_equals_global_on_every_catalog_preset() {
    // The catalog spans rides, deliveries, surge, and the adversarial
    // family — the merged sharded assignment must be *identical* (not just
    // equal in value) on each, for both objectives and several fan-outs.
    for scenario in Scenario::tiny_catalog() {
        let market = scenario.build_market();
        for objective in [Objective::Profit, Objective::Welfare] {
            let global = solve_greedy(&market, objective).assignment;
            for threads in [1usize, 2, 5] {
                let sharded = solve_sharded(&market, objective, threads);
                assert_eq!(
                    sharded, global,
                    "{} diverged ({objective:?}, {threads} threads)",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn per_component_bounds_sum_to_the_global_bound() {
    // Z_f* separates across components: no path column spans two, so the
    // sum of per-component optima is the global optimum (up to solver
    // tolerance on converged instances).
    for scenario in Scenario::tiny_catalog() {
        let market = scenario.build_market();
        let global = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default())
            .expect("global bound");
        let sharded =
            sharded_upper_bound(&market, Objective::Profit, UpperBoundOptions::default(), 2)
                .expect("sharded bound");
        assert!(
            global.converged,
            "{}: global did not converge",
            scenario.name
        );
        assert!(
            sharded.converged,
            "{}: a component did not converge",
            scenario.name
        );
        let rel = (global.bound - sharded.bound).abs() / global.bound.abs().max(1.0);
        assert!(
            rel < 1e-6,
            "{}: global {} vs component sum {}",
            scenario.name,
            global.bound,
            sharded.bound
        );
    }
}

#[test]
fn components_partition_the_interacting_market() {
    let market = Scenario::by_name("tiny-rides").unwrap().build_market();
    let comps = disjoint_components(&market);
    assert!(!comps.is_empty());
    let mut driver_seen = vec![false; market.num_drivers()];
    let mut task_seen = vec![false; market.num_tasks()];
    for sub in &comps {
        for &d in &sub.driver_map {
            assert!(!driver_seen[d]);
            driver_seen[d] = true;
        }
        for &t in &sub.task_map {
            assert!(!task_seen[t]);
            task_seen[t] = true;
        }
        // No cross-component interaction: a driver of this component may
        // not be able to serve any task of another component.
        for &d in &sub.driver_map {
            let view = DriverView::new(&market, d);
            for (t, seen) in task_seen.iter().enumerate() {
                if view.is_allowed(t) {
                    assert!(
                        sub.task_map.contains(&t) || !seen,
                        "driver {d} reaches task {t} outside its component"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn sharding_oracle_over_random_markets(
        seed in 0u64..10_000,
        tasks in 1usize..70,
        drivers in 0usize..12,
        hitch in any::<bool>(),
        threads in 1usize..6,
    ) {
        let model = if hitch { DriverModel::Hitchhiking } else { DriverModel::HomeWorkHome };
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, model)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let global = solve_greedy(&market, Objective::Profit).assignment;
        let sharded = solve_sharded(&market, Objective::Profit, threads);
        prop_assert_eq!(&sharded, &global);
        // The merged assignment is offline-feasible in its own right.
        prop_assert!(sharded.validate(&market).is_ok());
    }
}

#[test]
fn map_sharded_is_order_preserving_under_contention() {
    // More shards than items, odd sizes, and non-commutative work.
    let words: Vec<String> = (0..23).map(|i| format!("w{i}")).collect();
    let expect: Vec<String> = words.iter().map(|w| format!("{w}!")).collect();
    for threads in [1usize, 2, 7, 23, 99] {
        let got = map_sharded(words.clone(), threads, |w| format!("{w}!"));
        assert_eq!(got, expect, "threads {threads}");
    }
}
