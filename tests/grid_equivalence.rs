//! The spatial grid index is an *index*, not a semantics change: for every
//! market and every policy, `Simulator::run` with `use_grid: true` must
//! produce the same `SimulationResult` as the linear scan.
//!
//! Promoted from a single-seed unit test to a property over random
//! `TraceConfig`s, per the regression-suite charter: any future tuning of
//! the grid (cell counts, radius maths) that drops or reorders a candidate
//! set fails here.

use proptest::prelude::*;

use rideshare::prelude::*;

fn run_both(market: &Market, make: impl Fn() -> Box<dyn DispatchPolicy>) -> bool {
    let sim = Simulator::new(market);
    for value_sorted in [false, true] {
        let linear = sim.run(
            &mut *make(),
            SimulationOptions {
                value_sorted,
                use_grid: false,
            },
        );
        let grid = sim.run(
            &mut *make(),
            SimulationOptions {
                value_sorted,
                use_grid: true,
            },
        );
        if linear.dispatch != grid.dispatch
            || linear.served != grid.served
            || linear.rejected != grid.rejected
            || linear.events != grid.events
        {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn grid_and_linear_scan_are_equivalent(
        seed in 0u64..10_000,
        tasks in 1usize..80,
        drivers in 0usize..15,
        hitch in any::<bool>(),
        policy in 0usize..3,
        policy_seed in 0u64..100,
    ) {
        let model = if hitch { DriverModel::Hitchhiking } else { DriverModel::HomeWorkHome };
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, model)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let make = || -> Box<dyn DispatchPolicy> {
            match policy {
                0 => Box::new(MaxMargin::new()),
                1 => Box::new(NearestDriver::with_seed(policy_seed)),
                _ => Box::new(RandomDispatch::with_seed(policy_seed)),
            }
        };
        prop_assert!(
            run_both(&market, make),
            "grid/linear divergence at seed {seed}, {tasks}×{drivers}, policy {policy}"
        );
    }
}

#[test]
fn grid_equivalence_on_delivery_and_rush_presets() {
    // The catalog's structurally different workloads (depot clustering,
    // twin peaks) get a deterministic pass of the same property.
    for scenario in Scenario::tiny_catalog() {
        let market = scenario.build_market();
        let ok = run_both(&market, || Box::new(MaxMargin::new()));
        assert!(ok, "grid/linear divergence on {}", scenario.name);
    }
}
