//! Cross-validation of the hand-rolled LP/MILP substrate against classic
//! problems with known optima, plus duality spot-checks — the solvers
//! underpin every `Z_f*`/`Z*` number in EXPERIMENTS.md, so they get their
//! own adversarial suite.

use rideshare::lp::{BranchAndBound, Cmp, LinearProgram, PackingLp};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "expected {b}, got {a}");
}

#[test]
fn transportation_problem() {
    // Two warehouses (supply 20, 30) → three stores (demand 10, 25, 15),
    // cost-minimising shipment, costs w1: [2, 4, 5], w2: [3, 1, 7].
    // Optimum 125: w2→s2 25 and w2→s1 5 (freeing all of w1's cheap s3
    // capacity), w1→s1 5, w1→s3 15 → 25 + 15 + 10 + 75 = 125.
    let mut lp = LinearProgram::minimize();
    let c = [[2.0, 4.0, 5.0], [3.0, 1.0, 7.0]];
    let mut x = [[0usize; 3]; 2];
    for (w, row) in c.iter().enumerate() {
        for (s, &cost) in row.iter().enumerate() {
            x[w][s] = lp.add_var(format!("x{w}{s}"), cost);
        }
    }
    for (w, &supply) in [20.0, 30.0].iter().enumerate() {
        lp.add_constraint((0..3).map(|s| (x[w][s], 1.0)).collect(), Cmp::Le, supply);
    }
    for (s, &demand) in [10.0, 25.0, 15.0].iter().enumerate() {
        lp.add_constraint((0..2).map(|w| (x[w][s], 1.0)).collect(), Cmp::Ge, demand);
    }
    let sol = lp.solve().unwrap();
    assert_close(sol.objective, 125.0, 1e-7);
}

#[test]
fn max_flow_as_lp() {
    // s→a (cap 4), s→b (cap 2), a→b (cap 3), a→t (cap 1), b→t (cap 6).
    // Max s-t flow = 6: route 1 on s-a-t, 3 on s-a-b-t, 2 on s-b-t;
    // the source cut {s→a, s→b} = 4 + 2 certifies optimality.
    let mut lp = LinearProgram::maximize();
    let sa = lp.add_var("sa", 0.0);
    let sb = lp.add_var("sb", 0.0);
    let ab = lp.add_var("ab", 0.0);
    let at = lp.add_var("at", 1.0); // objective counts flow into t
    let bt = lp.add_var("bt", 1.0);
    for (v, cap) in [(sa, 4.0), (sb, 2.0), (ab, 3.0), (at, 1.0), (bt, 6.0)] {
        lp.add_constraint(vec![(v, 1.0)], Cmp::Le, cap);
    }
    // Conservation at a and b.
    lp.add_constraint(vec![(sa, 1.0), (ab, -1.0), (at, -1.0)], Cmp::Eq, 0.0);
    lp.add_constraint(vec![(sb, 1.0), (ab, 1.0), (bt, -1.0)], Cmp::Eq, 0.0);
    let sol = lp.solve().unwrap();
    assert_close(sol.objective, 6.0, 1e-7);
}

#[test]
fn weak_duality_on_random_packing_instances() {
    // For max cᵀx, Ax ≤ b: any dual-feasible y gives cᵀx* ≤ yᵀb. The
    // solver's reported duals must certify its own optimum.
    let mut state = 999u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for round in 0..20 {
        let rows = 3 + (round % 5);
        let cols = 4 + (round % 7);
        let mut lp = LinearProgram::maximize();
        let vars: Vec<usize> = (0..cols)
            .map(|j| lp.add_var(format!("x{j}"), 0.5 + 5.0 * next()))
            .collect();
        let mut coeffs_by_row = Vec::new();
        for _ in 0..rows {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for &v in &vars {
                if next() < 0.6 {
                    coeffs.push((v, 0.2 + next()));
                }
            }
            let rhs = 1.0 + 3.0 * next();
            lp.add_constraint(coeffs.clone(), Cmp::Le, rhs);
            coeffs_by_row.push((coeffs, rhs));
        }
        let Ok(sol) = lp.solve() else {
            continue; // unbounded (a column hit no rows) — skip
        };
        // Strong duality: yᵀb == objective (the duals certify the optimum;
        // weak duality alone would only give ≥).
        let dual_obj: f64 = sol
            .duals
            .iter()
            .zip(&coeffs_by_row)
            .map(|(y, (_, b))| y * b)
            .sum();
        assert_close(dual_obj, sol.objective, 1e-6);
        // Dual sign feasibility for a max/≤ problem.
        for y in &sol.duals {
            assert!(*y >= -1e-9, "negative dual {y}");
        }
    }
}

#[test]
fn packing_lp_never_exceeds_column_sum_bound() {
    // Trivial safety: the packing optimum is at most Σ max-cost per row
    // (each row serves ≤ ~1 unit) — catches wild over-counting.
    let mut lp = PackingLp::new(4);
    let costs = [3.0, 5.0, 2.0, 8.0, 1.0];
    lp.add_column(costs[0], &[0]);
    lp.add_column(costs[1], &[0, 1]);
    lp.add_column(costs[2], &[2]);
    lp.add_column(costs[3], &[1, 2, 3]);
    lp.add_column(costs[4], &[3]);
    let obj = lp.optimize().unwrap();
    let max_cost = 8.0;
    assert!(obj <= 4.0 * max_cost);
    // Known optimum: {5.0 on rows 0-1? vs 3 + 8 = 11 on rows 0,{1,2,3}}.
    assert_close(obj, 11.0, 1e-3);
}

#[test]
fn branch_and_bound_set_packing() {
    // Set packing with a known optimum: universe {0..5}, sets
    // A={0,1}, B={2,3}, C={4,5}, D={0,2,4} with weights 4, 4, 4, 10.
    // Best: D (10) + nothing touching 1,3,5 except A,B,C all collide with
    // D? A∩D={0}, B∩D={2}, C∩D={4} → D alone = 10 vs A+B+C = 12. Optimum 12.
    let mut lp = LinearProgram::maximize();
    let a = lp.add_var("A", 4.0);
    let b = lp.add_var("B", 4.0);
    let c = lp.add_var("C", 4.0);
    let d = lp.add_var("D", 10.0);
    for (elem_sets, _) in [
        (vec![a, d], 0),
        (vec![a], 1),
        (vec![b, d], 2),
        (vec![b], 3),
        (vec![c, d], 4),
        (vec![c], 5),
    ] {
        lp.add_constraint(
            elem_sets.into_iter().map(|v| (v, 1.0)).collect(),
            Cmp::Le,
            1.0,
        );
    }
    let sol = BranchAndBound::new(lp, vec![a, b, c, d]).solve().unwrap();
    assert_close(sol.objective, 12.0, 1e-6);
    assert!(sol.proven_optimal);
}

#[test]
fn branch_and_bound_agrees_with_exhaustive_search() {
    // Random 0/1 knapsacks, 12 items: B&B vs 2^12 brute force.
    let mut state = 4242u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for _ in 0..5 {
        let n = 12;
        let values: Vec<f64> = (0..n).map(|_| 1.0 + 9.0 * next()).collect();
        let weights: Vec<f64> = (0..n).map(|_| 1.0 + 4.0 * next()).collect();
        let cap = weights.iter().sum::<f64>() * 0.4;

        let mut lp = LinearProgram::maximize();
        let vars: Vec<usize> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| lp.add_var(format!("x{i}"), v))
            .collect();
        lp.add_constraint(
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
            Cmp::Le,
            cap,
        );
        let milp = BranchAndBound::new(lp, vars).solve().unwrap();

        let mut brute = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut v, mut w) = (0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    v += values[i];
                    w += weights[i];
                }
            }
            if w <= cap + 1e-9 {
                brute = brute.max(v);
            }
        }
        assert_close(milp.objective, brute, 1e-6);
    }
}
