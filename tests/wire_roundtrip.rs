//! Wire-codec round-trip properties.
//!
//! The serve daemon's equivalence guarantee rests on one mechanical fact:
//! an event that crosses a transport comes out *identical* — not merely
//! close — to the event that went in. This suite property-tests that fact
//! for all three encodings over adversarially-shaped events (boundary
//! epochs at `i64::MIN`/`MAX`, coordinates across region boundaries and
//! hemispheres, money values with no short decimal form):
//!
//! - binary frames: `encode_frame` → [`FrameDecoder`] identity, including
//!   decoding the same byte stream fed one byte at a time and in random
//!   uneven chunks (a TCP stream guarantees neither message boundaries
//!   nor chunk sizes),
//! - JSONL and CSV text lines: `to_*_line` → `from_*_line` identity
//!   (floats survive because the encoders use Rust's shortest-round-trip
//!   `{}` formatting),
//! - the `StreamEvent` ↔ `WireEvent` conversion used at the ingest
//!   boundary: lossless for every event kind,
//! - the compact `.rtb` binary stream: `write_events` → `read_events`
//!   identity over adversarial events, and the incremental
//!   [`RtbFileReader`] fed through a reader that trickles arbitrary
//!   chunk sizes decodes exactly what the whole-buffer [`RtbSlice`]
//!   path does.

use proptest::prelude::*;

use rideshare::online::{event_to_wire, wire_to_event};
use rideshare::prelude::*;
use rideshare::trace::rtb::{self, RtbFileReader, RtbSlice};
use rideshare::trace::wire::{
    encode_frame, from_csv_line, from_json_line, to_csv_line, to_json_line, FrameDecoder,
    WireDriver, WireEvent, WireTask,
};
use rideshare::trace::DriverModel;

/// Timestamps including the boundary epochs the wire must not mangle.
fn arb_epoch() -> impl Strategy<Value = i64> {
    prop_oneof![
        4 => any::<i64>(),
        1 => Just(i64::MIN),
        1 => Just(i64::MAX),
        1 => Just(0i64),
        1 => Just(-1i64),
    ]
}

/// Finite floats spanning magnitudes, signs, and values (0.1, 1/3, …)
/// with no finite decimal expansion — exactly where a lossy text encoding
/// would slip.
fn arb_money() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -1.0e9..1.0e9f64,
        1 => Just(0.1f64),
        1 => Just(1.0 / 3.0),
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
        1 => Just(f64::MIN_POSITIVE),
        1 => -1.0e-300..1.0e-300f64,
    ]
}

/// Coordinates: Porto-ish, region-boundary-ish, and hemisphere extremes.
fn arb_geo() -> impl Strategy<Value = GeoPoint> {
    prop_oneof![
        4 => (40.9..41.4f64, -8.9..-8.3f64),
        1 => (-90.0..90.0f64, -180.0..180.0f64),
    ]
    .prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn arb_model() -> impl Strategy<Value = DriverModel> {
    prop_oneof![
        Just(DriverModel::HomeWorkHome),
        Just(DriverModel::Hitchhiking)
    ]
}

fn arb_driver() -> impl Strategy<Value = WireDriver> {
    (
        any::<u32>(),
        arb_geo(),
        arb_geo(),
        arb_epoch(),
        arb_epoch(),
        arb_model(),
    )
        .prop_map(|(id, source, destination, start, end, model)| WireDriver {
            id,
            source,
            destination,
            shift_start: Timestamp::from_secs(start),
            shift_end: Timestamp::from_secs(end),
            model,
        })
}

fn arb_task() -> impl Strategy<Value = WireTask> {
    (
        (any::<u32>(), arb_epoch(), arb_geo(), arb_geo()),
        (arb_epoch(), arb_epoch(), arb_epoch()),
        (arb_money(), arb_money(), arb_money()),
    )
        .prop_map(
            |((id, publish, origin, destination), (pickup, complete, duration), (p, v, c))| {
                WireTask {
                    id,
                    publish_time: Timestamp::from_secs(publish),
                    origin,
                    destination,
                    pickup_deadline: Timestamp::from_secs(pickup),
                    completion_deadline: Timestamp::from_secs(complete),
                    duration: TimeDelta::from_secs(duration),
                    price: p,
                    valuation: v,
                    service_cost: c,
                }
            },
        )
}

fn arb_event() -> impl Strategy<Value = WireEvent> {
    prop_oneof![
        3 => arb_driver().prop_map(WireEvent::DriverOnline),
        4 => arb_task().prop_map(WireEvent::TaskPublished),
        1 => any::<u32>().prop_map(WireEvent::DriverOffline),
        1 => arb_epoch().prop_map(WireEvent::EpochTick),
        1 => Just(WireEvent::Eos),
    ]
}

/// Stream events only — [`WireEvent::Eos`] is the `.rtb` terminator, not
/// a record a caller hands to the writer.
fn arb_stream_event() -> impl Strategy<Value = WireEvent> {
    prop_oneof![
        3 => arb_driver().prop_map(WireEvent::DriverOnline),
        4 => arb_task().prop_map(WireEvent::TaskPublished),
        1 => any::<u32>().prop_map(WireEvent::DriverOffline),
        1 => arb_epoch().prop_map(WireEvent::EpochTick),
    ]
}

/// A reader that yields at most `chunk` bytes per `read` call — the
/// incremental `.rtb` reader must be insensitive to transport chunking,
/// exactly like the frame decoder below.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl std::io::Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Decodes a whole byte stream with the given feeding chunk length.
fn decode_all(bytes: &[u8], chunk: usize) -> Vec<WireEvent> {
    let mut decoder = FrameDecoder::default();
    let mut out = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        decoder.feed(piece);
        while let Some(e) = decoder.next().expect("valid stream must decode") {
            out.push(e);
        }
    }
    assert_eq!(decoder.pending_bytes(), 0, "leftover bytes after decode");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // encode → decode is the identity for any single event.
    #[test]
    fn frame_round_trip_is_identity(event in arb_event()) {
        let frame = encode_frame(&event);
        let mut decoder = FrameDecoder::default();
        decoder.feed(&frame);
        prop_assert_eq!(decoder.next().unwrap(), Some(event));
        prop_assert_eq!(decoder.next().unwrap(), None);
        prop_assert_eq!(decoder.pending_bytes(), 0);
    }

    // A whole stream of frames decodes identically whether it arrives in
    // one read, byte by byte, or in arbitrary uneven chunks.
    #[test]
    fn chunked_decode_equals_whole_decode(
        events in prop::collection::vec(arb_event(), 1..40),
        chunk in 1usize..64,
    ) {
        let mut bytes = Vec::new();
        for e in &events {
            bytes.extend_from_slice(&encode_frame(e));
        }
        let whole = decode_all(&bytes, bytes.len());
        prop_assert_eq!(&whole, &events);
        let dribble = decode_all(&bytes, 1);
        prop_assert_eq!(&dribble, &events);
        let chunked = decode_all(&bytes, chunk);
        prop_assert_eq!(&chunked, &events);
    }

    // JSONL text round trip is the identity (shortest-round-trip floats).
    #[test]
    fn json_line_round_trip_is_identity(event in arb_event()) {
        let line = to_json_line(&event);
        prop_assert_eq!(from_json_line(&line).unwrap(), event);
    }

    // CSV text round trip is the identity.
    #[test]
    fn csv_line_round_trip_is_identity(event in arb_event()) {
        let line = to_csv_line(&event);
        prop_assert_eq!(from_csv_line(&line).unwrap(), event);
    }

    // The ingest boundary's StreamEvent ↔ WireEvent conversion is
    // lossless: converting to the engine's event type and back yields the
    // original wire event (Eos maps to end-of-stream, not an event).
    #[test]
    fn stream_event_conversion_is_lossless(event in arb_event()) {
        match wire_to_event(event) {
            None => prop_assert_eq!(event, WireEvent::Eos),
            Some(stream_event) => {
                prop_assert_eq!(event_to_wire(&stream_event), event);
            }
        }
    }

    // The `.rtb` binary stream is the identity over adversarial events:
    // what `write_events` lays down, `read_events` yields back — exact
    // floats, boundary epochs, hemisphere coordinates and all — and the
    // writer's back-patched header count matches.
    #[test]
    fn rtb_round_trip_is_identity(
        events in prop::collection::vec(arb_stream_event(), 0..40),
    ) {
        let mut bytes = Vec::new();
        let count = rtb::write_events(&mut bytes, &events).unwrap();
        prop_assert_eq!(count, events.len() as u64);
        let decoded = rtb::read_events(&bytes).unwrap();
        prop_assert_eq!(decoded, events);
    }

    // The incremental reader decodes exactly what the zero-copy slice
    // reader does, no matter how the transport chunks the bytes.
    #[test]
    fn rtb_chunked_read_equals_whole_buffer_decode(
        events in prop::collection::vec(arb_stream_event(), 0..40),
        chunk in 1usize..48,
    ) {
        let mut bytes = Vec::new();
        rtb::write_events(&mut bytes, &events).unwrap();

        let mut whole = Vec::new();
        let mut slice = RtbSlice::new(&bytes).unwrap();
        while let Some(e) = slice.next().unwrap() {
            whole.push(e);
        }

        for chunk in [1, chunk, bytes.len()] {
            let trickle = Trickle { data: &bytes, pos: 0, chunk };
            let mut reader = RtbFileReader::from_reader(trickle).unwrap();
            let mut chunked = Vec::new();
            while let Some(e) = reader.next().unwrap() {
                chunked.push(e);
            }
            prop_assert_eq!(&chunked, &whole);
            prop_assert_eq!(&chunked, &events);
        }
    }

    // Corrupting a frame's length prefix or tag never panics the decoder
    // — it either still decodes (benign corruption) or yields a typed
    // error.
    #[test]
    fn corrupted_frames_never_panic(
        event in arb_event(),
        byte in 0usize..5,
        xor in 1u8..=255,
    ) {
        let mut frame = encode_frame(&event);
        let idx = byte.min(frame.len() - 1);
        frame[idx] ^= xor;
        let mut decoder = FrameDecoder::default();
        decoder.feed(&frame);
        // Either outcome is fine; panicking or looping is not.
        let _ = decoder.next();
        let _ = decoder.next();
    }
}
