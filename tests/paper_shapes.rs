//! Automated qualitative-reproduction checks: the *shapes* of the paper's
//! Figs. 5–9 at reduced scale, as assertions.
//!
//! These are the properties the paper's evaluation section reports; the
//! full-scale numbers live in EXPERIMENTS.md, but the trends must hold even
//! on a small sweep, and this suite keeps them from regressing.

use rideshare::metrics::Series;
use rideshare::prelude::*;

const SWEEP: [usize; 3] = [15, 60, 200];
const TASKS: usize = 250;

struct SweepPoint {
    greedy_profit: f64,
    max_margin_profit: f64,
    nearest_profit: f64,
    metrics: MarketMetrics,
}

fn run_point(drivers: usize, model: DriverModel) -> SweepPoint {
    let trace = TraceConfig::porto()
        .with_seed(1907)
        .with_task_count(TASKS)
        .with_driver_count(drivers, model)
        .generate();
    let market = Market::from_trace(&trace, &MarketBuildOptions::default());
    let greedy = solve_greedy(&market, Objective::Profit);
    let sim = Simulator::new(&market);
    let mm = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
    let nearest = sim.run(
        &mut NearestDriver::with_seed(0),
        SimulationOptions::default(),
    );
    SweepPoint {
        greedy_profit: greedy
            .assignment
            .objective_value(&market, Objective::Profit)
            .as_f64(),
        max_margin_profit: mm.total_profit(&market).as_f64(),
        nearest_profit: nearest.total_profit(&market).as_f64(),
        metrics: MarketMetrics::of(&market, &mm.assignment),
    }
}

#[test]
fn fig5_shape_greedy_dominates_online() {
    // The paper: "our offline deterministic algorithm has the best
    // performance" — at every sweep point, for both models.
    for model in [DriverModel::Hitchhiking, DriverModel::HomeWorkHome] {
        for drivers in SWEEP {
            let p = run_point(drivers, model);
            assert!(
                p.greedy_profit >= p.max_margin_profit - 1e-6,
                "{model}/{drivers}: greedy {} < maxMargin {}",
                p.greedy_profit,
                p.max_margin_profit
            );
            assert!(
                p.greedy_profit >= p.nearest_profit - 1e-6,
                "{model}/{drivers}: greedy {} < nearest {}",
                p.greedy_profit,
                p.nearest_profit
            );
        }
    }
}

#[test]
fn fig6_7_shape_density_grows_service_and_revenue() {
    // Figs. 6–7: more drivers → more revenue, higher served rate
    // (checked on the maxMargin runs, as the paper's market-insight
    // figures are simulation-based).
    let mut revenue = Series::new("revenue");
    let mut served = Series::new("served");
    for drivers in SWEEP {
        let p = run_point(drivers, DriverModel::Hitchhiking);
        revenue.push(drivers as f64, p.metrics.total_revenue);
        served.push(drivers as f64, p.metrics.served_rate);
    }
    assert!(
        revenue.is_non_decreasing(),
        "Fig. 6 shape broken: {:?}",
        revenue.points
    );
    assert!(
        served.is_non_decreasing(),
        "Fig. 7 shape broken: {:?}",
        served.points
    );
}

#[test]
fn fig8_9_shape_congestion_shrinks_per_worker_earnings() {
    // Figs. 8–9: more drivers → lower average revenue and fewer tasks per
    // worker. In an *extremely* sparse market adding drivers can first
    // raise per-worker throughput (coverage effect), so the congestion
    // trend is asserted on the dense half of the sweep — the regime the
    // paper's 20–300 drivers / 1000 tasks evaluation sits in.
    let mid = run_point(SWEEP[1], DriverModel::Hitchhiking);
    let hi = run_point(SWEEP[2], DriverModel::Hitchhiking);
    assert!(
        hi.metrics.avg_revenue_per_worker < mid.metrics.avg_revenue_per_worker,
        "Fig. 8 shape broken: {} → {}",
        mid.metrics.avg_revenue_per_worker,
        hi.metrics.avg_revenue_per_worker
    );
    assert!(
        hi.metrics.avg_tasks_per_worker < mid.metrics.avg_tasks_per_worker,
        "Fig. 9 shape broken: {} → {}",
        mid.metrics.avg_tasks_per_worker,
        hi.metrics.avg_tasks_per_worker
    );
}

#[test]
fn greedy_profit_grows_with_supply() {
    // More drivers can only expand the offline solution space on the same
    // task set; greedy is not strictly monotone but the trend must hold
    // across the sweep's endpoints.
    let lo = run_point(SWEEP[0], DriverModel::Hitchhiking);
    let hi = run_point(SWEEP[2], DriverModel::Hitchhiking);
    assert!(
        hi.greedy_profit > lo.greedy_profit,
        "supply {} → {} did not grow greedy profit ({} → {})",
        SWEEP[0],
        SWEEP[2],
        lo.greedy_profit,
        hi.greedy_profit
    );
}
