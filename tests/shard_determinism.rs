//! The region-sharding determinism battery.
//!
//! The sharded streaming engine's contract is that over a *legal* region
//! partition it is **not a different dispatcher**: for every policy and
//! every shard count it reproduces the sequential [`replay_stream`]
//! byte-for-byte. Correctness here is a determinism property, so this
//! suite pins it from every angle:
//!
//! - a proptest over random regional markets (random region counts,
//!   seeds, fleet sizes — every partition legal by construction) × every
//!   shard-stable policy `{margin, nearest, batch-3m, batch-opt-3m}` ×
//!   shard counts `{1, 2, 4}`, through both the parallel workers and the
//!   sequential validating path,
//! - pinned regressions on the `porto-regions` catalog scenario,
//!   including exact (`PartialEq`) equality of merged per-shard
//!   [`StreamMetrics`] against whole-stream metrics,
//! - `StreamMetrics::merge` associativity/commutativity (proptest) plus a
//!   tiny-catalog pin (regression, not just a property),
//! - compaction-is-invisible oracles at aggressive thresholds,
//! - a `#[should_panic]` proving the validator rejects an *illegal*
//!   partition (one dense city hash-split by grid cells),
//! - an `#[ignore]`d million-task acceptance run:
//!   `--shards 4 ≡ --shards 1` on the full lazy pipeline
//!   (`cargo test --release --test shard_determinism -- --ignored`).
//!
//! Event-order canonicalisation: within an instant-mode publish group the
//! sharded merge order (decision epoch, then task id) *is* the sequential
//! emission order, so instant comparisons are raw. A batched epoch is
//! emitted by the sequential engine in matcher-commit order instead, so
//! batched comparisons canonicalise both sides to the merge order first —
//! same decisions, same per-task records, one serialisation.

use proptest::prelude::*;

use rideshare::bench::Scenario;
use rideshare::online::{GreedyPairMatcher, ShardOptions, ShardPolicySpec, SimulationResult};
use rideshare::prelude::*;

fn regional_config(seed: u64, tasks: usize, drivers: usize, regions: usize) -> TraceConfig {
    TraceConfig::porto()
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, DriverModel::Hitchhiking)
        .with_regions(regions)
}

/// All four shard-stable policies the battery sweeps.
fn policy_matrix() -> Vec<ShardPolicySpec> {
    vec![
        ShardPolicySpec::MaxMargin,
        ShardPolicySpec::Nearest { seed: 0 },
        ShardPolicySpec::Batched {
            window: TimeDelta::from_mins(3),
            matcher: MatcherKind::Greedy,
        },
        ShardPolicySpec::Batched {
            window: TimeDelta::from_mins(3),
            matcher: MatcherKind::Optimal,
        },
    ]
}

fn policy_label(spec: ShardPolicySpec) -> &'static str {
    match spec {
        ShardPolicySpec::MaxMargin => "margin",
        ShardPolicySpec::Nearest { .. } => "nearest",
        ShardPolicySpec::Batched {
            matcher: MatcherKind::Greedy,
            ..
        } => "batch-3m",
        ShardPolicySpec::Batched {
            matcher: MatcherKind::Optimal,
            ..
        } => "batch-opt-3m",
    }
}

/// Sequential replay under the policy a [`ShardPolicySpec`] describes —
/// the same spec→policy materialization (`ShardPolicySpec::holder`) the
/// sharded engine gives each shard, run through one engine.
fn sequential(market: &Market, spec: ShardPolicySpec) -> SimulationResult {
    let mut sink = CollectingSink::new();
    let mut holder = spec.holder();
    let mut policy = holder.as_policy();
    let _ = replay_stream(
        market.speed(),
        market_events(market),
        &mut policy,
        StreamOptions::default(),
        &mut sink,
    );
    sink.into_result()
}

fn sharded(
    market: &Market,
    spec: ShardPolicySpec,
    partitioner: &dyn RegionPartitioner,
    shards: usize,
    validate: bool,
) -> (SimulationResult, StreamSummary) {
    let mut sink = CollectingSink::new();
    let summary = replay_sharded(
        market.speed(),
        market_events(market),
        spec,
        partitioner,
        ShardOptions::new(shards).validate(validate),
        &mut sink,
    );
    (sink.into_result(), summary)
}

/// Brings a result into the sharded merge's canonical serialisation:
/// events in `(decision epoch, task id)` order, routes rebuilt from that
/// order. Dispatch vector, counters, and every per-task record are
/// untouched — only the within-epoch interleaving is normalised.
fn canonicalize(mut result: SimulationResult, drivers: usize) -> SimulationResult {
    result
        .events
        .sort_by_key(|e| (e.decision_time, e.task.index()));
    let mut assignment = Assignment::empty(drivers);
    for e in &result.events {
        assignment.push_task(e.driver, e.task);
    }
    result.assignment = assignment;
    result
}

fn assert_byte_identical(
    got: &SimulationResult,
    expected: &SimulationResult,
    canonical: bool,
    drivers: usize,
    ctx: &str,
) {
    if canonical {
        let got = canonicalize(got.clone(), drivers);
        let expected = canonicalize(expected.clone(), drivers);
        assert_eq!(got.dispatch, expected.dispatch, "{ctx}: dispatch");
        assert_eq!(got.events, expected.events, "{ctx}: events");
        assert_eq!(
            got.assignment.routes(),
            expected.assignment.routes(),
            "{ctx}: routes"
        );
    } else {
        assert_eq!(got.dispatch, expected.dispatch, "{ctx}: dispatch");
        assert_eq!(got.events, expected.events, "{ctx}: events");
        assert_eq!(
            got.assignment.routes(),
            expected.assignment.routes(),
            "{ctx}: routes"
        );
    }
    assert_eq!(got.served, expected.served, "{ctx}: served");
    assert_eq!(got.rejected, expected.rejected, "{ctx}: rejected");
}

/// The pinned regression: the `porto-regions` catalog scenario under the
/// full policy × shard matrix, both execution paths.
#[test]
fn porto_regions_scenario_is_shard_invariant() {
    let scenario = Scenario::by_name("porto-regions").expect("catalog scenario");
    let config = scenario.trace_config().expect("trace-backed").clone();
    let market = scenario.build_market();
    let partitioner = BoxPartitioner::new(config.region_boxes());
    for spec in policy_matrix() {
        let canonical = matches!(spec, ShardPolicySpec::Batched { .. });
        let expected = sequential(&market, spec);
        for shards in [1usize, 2, 4] {
            for validate in [false, true] {
                let (got, summary) = sharded(&market, spec, &partitioner, shards, validate);
                assert_byte_identical(
                    &got,
                    &expected,
                    canonical,
                    market.num_drivers(),
                    &format!(
                        "porto-regions × {} × {shards} shards (validate={validate})",
                        policy_label(spec)
                    ),
                );
                assert_eq!(summary.tasks, market.num_tasks());
                assert_eq!(summary.drivers, market.num_drivers());
            }
        }
    }
}

/// Merged per-shard metrics equal whole-stream metrics **exactly** on the
/// pinned scenario (the metrics-merge acceptance criterion end-to-end:
/// the sharded engine feeds one global sink through its deterministic
/// merge, and fixed-point accumulation makes the result order-blind).
#[test]
fn porto_regions_sharded_metrics_equal_sequential_exactly() {
    let scenario = Scenario::by_name("porto-regions").expect("catalog scenario");
    let config = scenario.trace_config().expect("trace-backed").clone();
    let market = scenario.build_market();
    let partitioner = BoxPartitioner::new(config.region_boxes());
    for spec in [
        ShardPolicySpec::MaxMargin,
        ShardPolicySpec::Batched {
            window: TimeDelta::from_mins(3),
            matcher: MatcherKind::Greedy,
        },
    ] {
        let mut whole = StreamMetrics::hourly();
        let mut mm = MaxMargin::new();
        let mut greedy = GreedyPairMatcher;
        let mut policy = match spec {
            ShardPolicySpec::MaxMargin => StreamPolicy::Instant(&mut mm),
            ShardPolicySpec::Batched { window, .. } => StreamPolicy::Batched {
                window,
                matcher: &mut greedy,
            },
            ShardPolicySpec::Nearest { .. } => unreachable!(),
        };
        let _ = replay_stream(
            market.speed(),
            market_events(&market),
            &mut policy,
            StreamOptions::default(),
            &mut whole,
        );
        for shards in [2usize, 4] {
            let mut merged = StreamMetrics::hourly();
            let _ = replay_sharded(
                market.speed(),
                market_events(&market),
                spec,
                &partitioner,
                ShardOptions::new(shards).validate(false),
                &mut merged,
            );
            assert_eq!(
                merged,
                whole,
                "{} × {shards} shards: metrics diverged",
                policy_label(spec)
            );
        }
    }
}

/// `StreamMetrics::merge` folded from per-shard accumulators equals the
/// whole-stream accumulator on the tiny catalog — pinned as a regression
/// on every scenario, not just sampled by the proptest below.
#[test]
fn tiny_catalog_metric_merge_is_exact() {
    for scenario in Scenario::tiny_catalog() {
        let market = scenario.build_market();
        let mut sink = CollectingSink::new();
        let _ = replay_stream(
            market.speed(),
            market_events(&market),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
        let result = sink.into_result();

        let shards = 3usize;
        let mut whole = StreamMetrics::hourly();
        let mut parts: Vec<StreamMetrics> = (0..shards).map(|_| StreamMetrics::hourly()).collect();
        for d in market.drivers() {
            whole.driver_online(d);
            for p in &mut parts {
                p.driver_online(d);
            }
        }
        for e in &result.events {
            let task = &market.tasks()[e.task.index()];
            whole.dispatched(task, e);
            parts[e.task.index() % shards].dispatched(task, e);
        }
        for (t, d) in result.dispatch.iter().enumerate() {
            if d.is_none() {
                let task = &market.tasks()[t];
                StreamSink::rejected(&mut whole, task, task.publish_time);
                StreamSink::rejected(&mut parts[t % shards], task, task.publish_time);
            }
        }
        // Left fold and right fold both equal the whole-stream form.
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right = parts[2].clone();
        right.merge(&parts[1]);
        right.merge(&parts[0]);
        assert_eq!(left, whole, "{}: left fold", scenario.name);
        assert_eq!(right, whole, "{}: right fold", scenario.name);
    }
}

/// Aggressive compaction (threshold 1) leaves the whole scenario catalog's
/// streamed results untouched — instant and batched.
#[test]
fn catalog_compaction_oracle() {
    for scenario in Scenario::tiny_catalog() {
        let market = scenario.build_market();
        let run = |options: StreamOptions| {
            let mut sink = CollectingSink::new();
            let _ = replay_stream(
                market.speed(),
                market_events(&market),
                &mut StreamPolicy::Instant(&mut MaxMargin::new()),
                options,
                &mut sink,
            );
            sink.into_result()
        };
        let plain = run(StreamOptions::default().no_compaction());
        let compacted = run(StreamOptions::default().compaction(1));
        assert_eq!(plain.dispatch, compacted.dispatch, "{}", scenario.name);
        assert_eq!(plain.events, compacted.events, "{}", scenario.name);

        let run_batched_stream = |options: StreamOptions| {
            let mut sink = CollectingSink::new();
            let mut matcher = GreedyPairMatcher;
            let _ = replay_stream(
                market.speed(),
                market_events(&market),
                &mut StreamPolicy::Batched {
                    window: TimeDelta::from_mins(3),
                    matcher: &mut matcher,
                },
                options,
                &mut sink,
            );
            sink.into_result()
        };
        let plain = run_batched_stream(StreamOptions::default().no_compaction());
        let compacted = run_batched_stream(StreamOptions::default().compaction(1));
        assert_eq!(
            plain.dispatch, compacted.dispatch,
            "{} batched",
            scenario.name
        );
        assert_eq!(plain.events, compacted.events, "{} batched", scenario.name);
    }
}

/// An illegal partition — one dense city hash-split into grid cells — is
/// caught by the validator, naming the offending pair.
#[test]
#[should_panic(expected = "region partition violated")]
fn validator_rejects_single_city_grid_hash() {
    let trace = TraceConfig::porto()
        .with_seed(44)
        .with_task_count(80)
        .with_driver_count(15, DriverModel::Hitchhiking)
        .generate();
    let market = Market::from_trace(&trace, &MarketBuildOptions::default());
    let partitioner = GridHashPartitioner::new(trace.bbox, 4, 4);
    let mut sink = CollectingSink::new();
    let _ = replay_sharded(
        market.speed(),
        market_events(&market),
        ShardPolicySpec::MaxMargin,
        &partitioner,
        ShardOptions::new(2).validate(true),
        &mut sink,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The battery's core: random regional markets (every partition legal
    // by construction), every policy, shard counts {1, 2, 4}, both
    // execution paths — always byte-identical to sequential replay.
    #[test]
    fn random_regional_markets_are_shard_invariant(
        seed in 0u64..10_000,
        tasks in 30usize..90,
        drivers in 4usize..16,
        regions in 2usize..5,
    ) {
        let config = regional_config(seed, tasks, drivers, regions);
        let market = Market::from_trace(&config.generate(), &MarketBuildOptions::default());
        let partitioner = BoxPartitioner::new(config.region_boxes());
        for spec in policy_matrix() {
            let canonical = matches!(spec, ShardPolicySpec::Batched { .. });
            let expected = sequential(&market, spec);
            for shards in [1usize, 2, 4] {
                // Parallel workers…
                let (got, summary) = sharded(&market, spec, &partitioner, shards, false);
                assert_byte_identical(
                    &got, &expected, canonical, market.num_drivers(),
                    &format!("seed {seed} × {} × {shards} shards", policy_label(spec)),
                );
                prop_assert_eq!(summary.tasks, market.num_tasks());
            }
            // …and the sequential validating path (also proves the random
            // partition really is legal).
            let (got, _) = sharded(&market, spec, &partitioner, 2, true);
            assert_byte_identical(
                &got, &expected, canonical, market.num_drivers(),
                &format!("seed {seed} × {} × validator", policy_label(spec)),
            );
        }
    }

    // Merge algebra on random partitions of random replays: associative,
    // commutative, exact.
    #[test]
    fn metric_merge_is_associative_and_commutative(
        seed in 0u64..10_000,
        tasks in 20usize..80,
        drivers in 2usize..12,
        parts in 2usize..5,
    ) {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let mut sink = CollectingSink::new();
        let _ = replay_stream(
            market.speed(),
            market_events(&market),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
        let result = sink.into_result();

        let mut whole = StreamMetrics::hourly();
        let mut split: Vec<StreamMetrics> =
            (0..parts).map(|_| StreamMetrics::hourly()).collect();
        for d in market.drivers() {
            whole.driver_online(d);
            for p in &mut split {
                p.driver_online(d);
            }
        }
        for e in &result.events {
            let task = &market.tasks()[e.task.index()];
            whole.dispatched(task, e);
            split[e.task.index() % parts].dispatched(task, e);
        }
        for (t, d) in result.dispatch.iter().enumerate() {
            if d.is_none() {
                let task = &market.tasks()[t];
                StreamSink::rejected(&mut whole, task, task.publish_time);
                StreamSink::rejected(&mut split[t % parts], task, task.publish_time);
            }
        }

        // Forward fold, reverse fold, and a nested grouping all agree.
        let mut forward = split[0].clone();
        for p in &split[1..] {
            forward.merge(p);
        }
        let mut reverse = split[parts - 1].clone();
        for p in split[..parts - 1].iter().rev() {
            reverse.merge(p);
        }
        let nested = if parts >= 3 {
            let mut inner = split[1].clone();
            for p in &split[2..parts - 1] {
                inner.merge(p);
            }
            let mut head = split[0].clone();
            head.merge(&inner);
            head.merge(&split[parts - 1]);
            head
        } else {
            let mut head = split[0].clone();
            head.merge(&split[1]);
            head
        };
        prop_assert_eq!(&forward, &whole);
        prop_assert_eq!(&reverse, &whole);
        prop_assert_eq!(&nested, &whole);
    }
}

/// The million-task acceptance run: `--shards 4` ≡ `--shards 1` on the
/// full lazy pipeline (generation → pricing → dispatch → metrics), with
/// exact metric equality. Release only:
/// `cargo test --release --test shard_determinism -- --ignored`.
#[test]
#[ignore = "heavy: 1M-task sharded replay, release only"]
fn million_task_sharded_replay_is_byte_identical() {
    let config = TraceConfig::porto()
        .with_seed(0)
        .with_task_count(1_000_000)
        .with_driver_count(450, DriverModel::Hitchhiking)
        .with_regions(4);
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };
    let run = |shards: usize| {
        let stream = config.stream();
        let speed = stream.speed();
        let bbox = stream.bounding_box();
        let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
        let mut metrics = StreamMetrics::hourly();
        let options = StreamOptions::default().grid(bbox);
        let summary = if shards == 1 {
            let mut mm = MaxMargin::new();
            let mut policy = StreamPolicy::Instant(&mut mm);
            let mut engine = StreamEngine::new(speed, options);
            for shift in stream.drivers() {
                engine.push(
                    StreamEvent::DriverOnline(Driver::from(shift)),
                    &mut policy,
                    &mut metrics,
                );
            }
            for trip in stream {
                let task = pricer.price(&trip);
                engine.push(StreamEvent::TaskPublished(task), &mut policy, &mut metrics);
            }
            engine.finish(&mut policy, &mut metrics)
        } else {
            let partitioner = BoxPartitioner::new(config.region_boxes());
            let driver_events: Vec<StreamEvent> = stream
                .drivers()
                .iter()
                .map(|s| StreamEvent::DriverOnline(Driver::from(s)))
                .collect();
            let task_events =
                stream.map(move |trip| StreamEvent::TaskPublished(pricer.price(&trip)));
            replay_sharded(
                speed,
                driver_events.into_iter().chain(task_events),
                ShardPolicySpec::MaxMargin,
                &partitioner,
                ShardOptions::new(shards).stream(options).validate(false),
                &mut metrics,
            )
        };
        (summary, metrics)
    };
    let (seq_summary, seq_metrics) = run(1);
    assert_eq!(seq_summary.tasks, 1_000_000);
    let (summary, metrics) = run(4);
    assert_eq!(summary.tasks, 1_000_000);
    assert_eq!(summary.served, seq_summary.served);
    assert_eq!(summary.rejected, seq_summary.rejected);
    assert_eq!(metrics, seq_metrics, "1M-task sharded metrics diverged");
    // Bounded memory: held orders stay far below the trace in every shard.
    assert!(
        summary.peak_held_tasks < 10_000,
        "{}",
        summary.peak_held_tasks
    );
}
