//! The tsdb chunk-codec round-trip battery (property-based).
//!
//! The codec's contract is *lossless on the whole `(i64, i128)` domain*:
//! delta-of-delta + zigzag-varint encoding round-trips every sample
//! sequence exactly, because wrapping subtraction mod 2⁶⁴/2¹²⁸ is a
//! bijection. These proptests pin that contract over adversarial series
//! — irregular timestamps, `i64`/`i128` extremes, long constant runs,
//! alternating sign flips — and pin the incremental decoder's
//! chunking-insensitivity law, mirroring `tests/wire_roundtrip.rs` for
//! the `.rtb` wire format:
//!
//! - **round-trip identity**: `decode_file(header + encode_chunk(s)) == s`
//!   for any non-empty series, including multi-chunk files,
//! - **chunked ≡ whole-buffer**: [`ChunkFileDecoder`] fed one byte at a
//!   time, in uneven slices, or the whole file at once yields identical
//!   samples and ends at a clean boundary,
//! - **truncation safety**: every strict prefix of a valid file either
//!   waits for more bytes or fails with a typed [`CodecError`] — never a
//!   panic, never fabricated samples,
//! - **corruption detection**: any single-byte payload corruption is
//!   caught by the FNV-1a checksum (each hash step is a bijection of the
//!   running state, so one changed byte always changes the digest).

use proptest::prelude::*;
use rideshare::tsdb::codec::{
    decode_file, encode_chunk, file_header, ChunkFileDecoder, CodecError, Sample, CHUNK_HEADER_LEN,
    FILE_HEADER_LEN,
};

/// Timestamps biased toward the adversarial corners: extremes, zero, and
/// near-zero alongside arbitrary values.
fn arb_t() -> impl Strategy<Value = i64> {
    prop_oneof![
        4 => any::<i64>(),
        2 => -90_000i64..90_000i64,
        1 => Just(i64::MIN),
        1 => Just(i64::MAX),
        1 => Just(0i64),
        1 => Just(-1i64),
    ]
}

/// A uniform full-range i128, assembled from two u64 words (the vendored
/// proptest shim has no `any::<i128>()`).
fn arb_i128_any() -> impl Strategy<Value = i128> {
    (any::<u64>(), any::<u64>())
        .prop_map(|(hi, lo)| ((u128::from(hi) << 64) | u128::from(lo)).cast_signed())
}

/// Values biased toward the i128 corners and the 2⁻⁴⁰ fixed-point scale
/// the store actually writes.
fn arb_v() -> impl Strategy<Value = i128> {
    prop_oneof![
        4 => arb_i128_any(),
        2 => (-1_000_000i64..1_000_000i64).prop_map(|m| i128::from(m) << 40),
        1 => Just(i128::MIN),
        1 => Just(i128::MAX),
        1 => Just(0i128),
        1 => Just(-1i128),
    ]
}

/// A fully irregular series: no monotonicity, no smoothness — the codec
/// must not care (ordering is the store's contract, not the codec's).
fn arb_series() -> impl Strategy<Value = Vec<Sample>> {
    prop::collection::vec(
        (arb_t(), arb_v()).prop_map(|(t, v)| Sample { t, v }),
        1..200,
    )
}

/// A constant run: fixed cadence, fixed value — the best case the format
/// was shaped for (two one-byte varints per sample after the first).
fn arb_constant_run() -> impl Strategy<Value = Vec<Sample>> {
    (arb_t(), 1i64..7200, arb_v(), 1usize..300).prop_map(|(t0, dt, v, n)| {
        (0..n)
            .map(|k| Sample {
                t: t0.wrapping_add(dt.wrapping_mul(k as i64)),
                v,
            })
            .collect()
    })
}

/// A sign-flip series: the value alternates between `v` and `-v` (or the
/// extremes), so every delta is maximal — the worst case for varint
/// width, the same identity contract.
fn arb_sign_flips() -> impl Strategy<Value = Vec<Sample>> {
    let pairs = prop_oneof![
        3 => arb_v().prop_map(|v| (v, v.checked_neg().unwrap_or(i128::MAX))),
        1 => Just((i128::MIN, i128::MAX)),
    ];
    (arb_t(), 1i64..3600, pairs, 1usize..200).prop_map(|(t0, dt, (a, b), n)| {
        (0..n)
            .map(|k| Sample {
                t: t0.wrapping_add(dt.wrapping_mul(k as i64)),
                v: if k % 2 == 0 { a } else { b },
            })
            .collect()
    })
}

/// Any of the adversarial shapes above.
fn arb_any_series() -> impl Strategy<Value = Vec<Sample>> {
    prop_oneof![
        3 => arb_series(),
        1 => arb_constant_run(),
        1 => arb_sign_flips(),
    ]
}

/// Encodes `samples` as a complete file, split into chunks of at most
/// `chunk_len` samples.
fn encode_as_file(samples: &[Sample], chunk_len: usize) -> Vec<u8> {
    let mut bytes = file_header().to_vec();
    for chunk in samples.chunks(chunk_len.max(1)) {
        encode_chunk(chunk, &mut bytes).expect("encode small chunk");
    }
    bytes
}

/// Decodes a whole file through the incremental decoder, feeding `chunk`
/// bytes at a time.
fn decode_incremental(bytes: &[u8], chunk: usize) -> Vec<Sample> {
    let mut dec = ChunkFileDecoder::new();
    let mut out = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        dec.feed(piece);
        while let Some(samples) = dec.next().expect("valid file must decode") {
            out.extend(samples);
        }
    }
    assert!(dec.at_clean_boundary(), "leftover bytes after decode");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // encode → decode is the identity for any series, however hostile
    // the timestamps and values.
    #[test]
    fn single_chunk_round_trip_is_identity(samples in arb_any_series()) {
        let bytes = encode_as_file(&samples, samples.len());
        prop_assert_eq!(decode_file(&bytes).expect("decode"), samples);
    }

    // The identity holds regardless of how the series is split into
    // chunks — chunking is a storage detail, not a semantic one.
    #[test]
    fn multi_chunk_round_trip_is_identity(
        samples in arb_any_series(),
        chunk_len in 1usize..64,
    ) {
        let bytes = encode_as_file(&samples, chunk_len);
        prop_assert_eq!(decode_file(&bytes).expect("decode"), samples);
    }

    // The incremental decoder is insensitive to read granularity: byte
    // by byte, uneven slices, or the whole buffer — all equal.
    #[test]
    fn chunked_decode_equals_whole_decode(
        samples in arb_any_series(),
        chunk_len in 1usize..64,
        feed in 1usize..96,
    ) {
        let bytes = encode_as_file(&samples, chunk_len);
        let whole = decode_file(&bytes).expect("whole-buffer decode");
        prop_assert_eq!(&whole, &samples);
        prop_assert_eq!(&decode_incremental(&bytes, feed), &whole);
        prop_assert_eq!(&decode_incremental(&bytes, 1), &whole);
        prop_assert_eq!(&decode_incremental(&bytes, bytes.len()), &whole);
    }

    // Every strict prefix of a valid file is handled without panicking:
    // the decoder either asks for more bytes (and reports the pending
    // tail) or returns a typed error — and it never yields samples past
    // the last complete chunk.
    #[test]
    fn truncation_never_panics_or_fabricates(
        samples in arb_any_series(),
        chunk_len in 1usize..32,
        cut_seed in 0usize..1_000_000,
    ) {
        let bytes = encode_as_file(&samples, chunk_len);
        let whole = decode_file(&bytes).expect("whole-buffer decode");
        let cut = cut_seed % bytes.len();

        // Whole-buffer decode of the prefix: typed error or exact prefix.
        match decode_file(&bytes[..cut]) {
            Ok(got) => prop_assert!(whole.starts_with(&got)),
            Err(e) => prop_assert!(matches!(
                e,
                CodecError::TruncatedHeader { .. } | CodecError::TruncatedChunk { .. }
            )),
        }

        // Incremental decode of the prefix: only complete chunks come
        // out, and what comes out is a prefix of the true series.
        let mut dec = ChunkFileDecoder::new();
        dec.feed(&bytes[..cut]);
        let mut got = Vec::new();
        while let Some(chunk) = dec.next().expect("prefix of a valid file has no malformed chunk") {
            got.extend(chunk);
        }
        prop_assert!(whole.starts_with(&got));
        if cut < FILE_HEADER_LEN + CHUNK_HEADER_LEN {
            prop_assert!(got.is_empty());
        }
    }

    // Any single-byte corruption of a chunk payload is detected by the
    // checksum; corrupting header bytes may surface as other typed
    // errors, but never as a panic and never as silently wrong samples.
    #[test]
    fn single_byte_corruption_is_detected(
        samples in arb_any_series(),
        pos_seed in 0usize..1_000_000,
        delta in 1u8..=255,
    ) {
        let bytes = encode_as_file(&samples, samples.len());
        let payload_start = FILE_HEADER_LEN + CHUNK_HEADER_LEN;
        let mut corrupt = bytes.clone();
        let pos = payload_start + pos_seed % (bytes.len() - payload_start);
        corrupt[pos] = corrupt[pos].wrapping_add(delta);
        // Every FNV-1a step is a bijection of the running hash, so a
        // changed payload byte always changes the digest.
        let got = decode_file(&corrupt);
        prop_assert!(
            matches!(got, Err(CodecError::ChecksumMismatch { .. })),
            "payload corruption at byte {} gave {:?}, want ChecksumMismatch",
            pos,
            got
        );
    }

    // Constant telemetry compresses to ~2 bytes per sample after the
    // first — the size law that makes per-window deltas cheap to keep.
    #[test]
    fn constant_run_compresses_to_two_bytes_per_sample(
        t0 in -1_000_000i64..1_000_000,
        dt in 1i64..7200,
        v in (-1_000_000i64..1_000_000).prop_map(|m| i128::from(m) << 40),
        n in 2usize..300,
    ) {
        let samples: Vec<Sample> = (0..n)
            .map(|k| Sample { t: t0 + dt * k as i64, v })
            .collect();
        let mut bytes = Vec::new();
        encode_chunk(&samples, &mut bytes).expect("encode");
        // Header + first sample (≤ 29 bytes) + one dod byte and one
        // delta byte per remaining sample.
        prop_assert!(bytes.len() <= CHUNK_HEADER_LEN + 29 + 2 * (n - 1));
    }
}
