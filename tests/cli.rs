//! End-to-end tests of the `rideshare` CLI binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rideshare"))
        .args(args)
        .output()
        .expect("spawn rideshare binary")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rideshare-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn generate_summary_solve_simulate_bound_pipeline() {
    let dir = tmpdir("pipeline");
    let dir_s = dir.to_str().unwrap();

    let gen = cli(&[
        "generate",
        "--tasks",
        "50",
        "--drivers",
        "6",
        "--seed",
        "11",
        "--out",
        dir_s,
    ]);
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );
    assert!(dir.join("trips.csv").exists());
    assert!(dir.join("drivers.csv").exists());

    let summary = cli(&["summary", "--dir", dir_s]);
    assert!(summary.status.success());
    let text = String::from_utf8_lossy(&summary.stdout);
    assert!(text.contains("6 drivers × 50 tasks"), "{text}");
    assert!(text.contains("GA guarantee"));

    let solve = cli(&["solve", "--dir", dir_s]);
    assert!(solve.status.success());
    assert!(String::from_utf8_lossy(&solve.stdout).contains("greedy:"));

    for policy in ["margin", "nearest"] {
        let sim = cli(&["simulate", "--dir", dir_s, "--policy", policy]);
        assert!(sim.status.success());
        assert!(String::from_utf8_lossy(&sim.stdout).contains("online: served"));
    }

    let bound = cli(&["bound", "--dir", dir_s]);
    assert!(bound.status.success());
    assert!(String::from_utf8_lossy(&bound.stdout).contains("Z_f* ="));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generate_is_deterministic_in_seed() {
    let a = tmpdir("det-a");
    let b = tmpdir("det-b");
    for dir in [&a, &b] {
        let out = cli(&[
            "generate",
            "--tasks",
            "20",
            "--drivers",
            "3",
            "--seed",
            "99",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success());
    }
    let ta = std::fs::read_to_string(a.join("trips.csv")).unwrap();
    let tb = std::fs::read_to_string(b.join("trips.csv")).unwrap();
    assert_eq!(ta, tb);
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn delivery_flag_changes_structure() {
    let rides = tmpdir("rides");
    let deliv = tmpdir("deliv");
    for (dir, extra) in [(&rides, None), (&deliv, Some("--delivery"))] {
        let mut args = vec![
            "generate",
            "--tasks",
            "30",
            "--drivers",
            "3",
            "--seed",
            "5",
            "--out",
            dir.to_str().unwrap(),
        ];
        if let Some(f) = extra {
            args.push(f);
        }
        assert!(cli(&args).status.success());
    }
    let a = std::fs::read_to_string(rides.join("trips.csv")).unwrap();
    let b = std::fs::read_to_string(deliv.join("trips.csv")).unwrap();
    assert_ne!(a, b, "delivery preset must produce a different workload");
    let _ = std::fs::remove_dir_all(&rides);
    let _ = std::fs::remove_dir_all(&deliv);
}

#[test]
fn bad_input_reports_errors() {
    let nothing = cli(&["solve", "--dir", "/nonexistent-rideshare-dir"]);
    assert!(!nothing.status.success());
    assert!(String::from_utf8_lossy(&nothing.stderr).contains("error:"));

    let unknown = cli(&["frobnicate"]);
    assert!(!unknown.status.success());

    let no_args = cli(&[]);
    assert!(!no_args.status.success());

    let help = cli(&["help"]);
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("USAGE"));
}

#[test]
fn replay_records_telemetry_and_query_reads_it_back() {
    // The telemetry loop end to end at the CLI surface: replay with
    // --tsdb-dir writes a store, query filters and aggregates it.
    let dir = tmpdir("tsdb-query");
    let dir_s = dir.to_str().unwrap();
    let run = cli(&[
        "replay",
        "--tasks",
        "2000",
        "--drivers",
        "40",
        "--seed",
        "3",
        "--tsdb-dir",
        dir_s,
        "--tsdb-scenario",
        "cli-smoke",
        "--quiet-table",
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(String::from_utf8_lossy(&run.stdout).contains("tsdb: recorded"));

    let table = cli(&[
        "query",
        "--tsdb",
        dir_s,
        "--filter",
        "scenario=cli-smoke,metric=profit",
    ]);
    assert!(table.status.success());
    let stdout = String::from_utf8_lossy(&table.stdout);
    assert!(stdout.contains("window"), "{stdout}");

    let canon = cli(&[
        "query",
        "--tsdb",
        dir_s,
        "--filter",
        "metric=served",
        "--canonical",
    ]);
    assert!(canon.status.success());
    let json = String::from_utf8_lossy(&canon.stdout);
    assert!(json.contains("\"schema\":\"rideshare-tsdb/1\""), "{json}");

    // --agg rate is wired end to end: the table header names the
    // projection, and the canonical JSON records it.
    let rate = cli(&[
        "query",
        "--tsdb",
        dir_s,
        "--filter",
        "scenario=cli-smoke,metric=profit",
        "--agg",
        "rate",
    ]);
    assert!(rate.status.success());
    let rate_table = String::from_utf8_lossy(&rate.stdout);
    assert!(rate_table.contains("rate"), "{rate_table}");

    let rate_canon = cli(&[
        "query",
        "--tsdb",
        dir_s,
        "--filter",
        "metric=served",
        "--agg",
        "rate",
        "--canonical",
    ]);
    assert!(rate_canon.status.success());
    let rate_json = String::from_utf8_lossy(&rate_canon.stdout);
    assert!(rate_json.contains("\"agg\":\"rate\""), "{rate_json}");
    // Canonical windows carry exact sufficient statistics, not the
    // projection, so rate output equals sum output up to the agg field.
    assert_eq!(
        rate_json.replace("\"agg\":\"rate\"", "\"agg\":\"sum\""),
        json
    );

    // An unknown projection is rejected naming the legal spellings.
    let bad_agg = cli(&["query", "--tsdb", dir_s, "--agg", "median"]);
    assert!(!bad_agg.status.success());
    assert!(String::from_utf8_lossy(&bad_agg.stderr).contains("sum|avg|rate|min|max"));

    // Error paths: querying is read-only, so a missing store directory
    // is a typed error (and must not create an empty store), and an
    // unknown label key names the legal keys.
    let missing = cli(&[
        "query",
        "--tsdb",
        "/nonexistent-rideshare-tsdb",
        "--filter",
        "metric=profit",
    ]);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("no store directory"));
    assert!(!PathBuf::from("/nonexistent-rideshare-tsdb").exists());

    let bad_label = cli(&["query", "--tsdb", dir_s, "--filter", "flavor=spicy"]);
    assert!(!bad_label.status.success());
    assert!(String::from_utf8_lossy(&bad_label.stderr).contains("unknown label key"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_streams_in_bounded_memory() {
    // The streaming subcommand end to end: a small synthetic stream,
    // instant and batched policies, peak-resident line included.
    for policy in ["margin", "batch-2m"] {
        let out = cli(&[
            "replay",
            "--tasks",
            "2000",
            "--drivers",
            "40",
            "--seed",
            "3",
            "--policy",
            policy,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("served"), "{stdout}");
        assert!(stdout.contains("peak resident state"), "{stdout}");
        assert!(stdout.contains("tasks/s"), "{stdout}");
    }

    let bad = cli(&["replay", "--policy", "frobnicate"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown policy"));
}

/// Normalizes a `serve --canonical` report onto `replay --canonical`'s
/// shape: the subcommand prefix differs and serve appends one daemon-only
/// diagnostics line (events/windows/days/snapshots). Everything else —
/// the metrics table, the served/revenue/profit line, mean wait, the
/// peak-resident-state line — must match byte for byte.
fn serve_as_replay(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|l| !l.contains("window(s)"))
        .map(|l| l.replacen("serve:", "replay:", 1))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn export_serve_jsonl_matches_replay_and_writes_snapshots() {
    use rideshare::metrics::{StreamMetrics, SNAPSHOT_SCHEMA};

    let dir = tmpdir("serve-jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("events.jsonl");
    let log_s = log.to_str().unwrap().to_string();
    let snaps = dir.join("snapshots");
    let snaps_s = snaps.to_str().unwrap().to_string();
    let trace = ["--tasks", "1500", "--drivers", "30", "--seed", "7"];

    // Export the event log the daemon will ingest.
    let mut export_args = vec!["export"];
    export_args.extend_from_slice(&trace);
    export_args.extend_from_slice(&["--out", &log_s]);
    let exported = cli(&export_args);
    assert!(
        exported.status.success(),
        "{}",
        String::from_utf8_lossy(&exported.stderr)
    );
    let log_text = std::fs::read_to_string(&log).unwrap();
    assert_eq!(log_text.lines().count(), 30 + 1500 + 1, "events + EOS");

    // The drained daemon's canonical report equals replay's byte for byte.
    let served = cli(&[
        "serve",
        "--source",
        &format!("jsonl:{log_s}"),
        "--policy",
        "margin",
        "--canonical",
        "--snapshot-dir",
        &snaps_s,
    ]);
    assert!(
        served.status.success(),
        "{}",
        String::from_utf8_lossy(&served.stderr)
    );
    let serve_stdout = String::from_utf8_lossy(&served.stdout);
    assert!(serve_stdout.contains("stop: drained"), "{serve_stdout}");

    let mut replay_args = vec!["replay"];
    replay_args.extend_from_slice(&trace);
    replay_args.extend_from_slice(&["--policy", "margin", "--canonical"]);
    let replayed = cli(&replay_args);
    assert!(replayed.status.success());
    let replay_stdout = String::from_utf8_lossy(&replayed.stdout);
    assert_eq!(
        serve_as_replay(&serve_stdout),
        serve_as_replay(&replay_stdout)
    );

    // Snapshots: the schema pin holds, every file parses back exactly, and
    // the final snapshot is the fixed point of parse → re-serialize.
    let final_json = std::fs::read_to_string(snaps.join("final.json")).unwrap();
    assert!(
        final_json.starts_with(&format!("{{\"schema\":\"{SNAPSHOT_SCHEMA}\"")),
        "{final_json}"
    );
    let mut snapshot_files = 0usize;
    for entry in std::fs::read_dir(&snaps).unwrap() {
        let path = entry.unwrap().path();
        let json = std::fs::read_to_string(&path).unwrap();
        let parsed = StreamMetrics::from_canonical_json(json.trim())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            parsed.to_canonical_json(),
            json.trim(),
            "{}",
            path.display()
        );
        snapshot_files += 1;
    }
    assert!(
        snapshot_files >= 2,
        "final.json + hourly snapshots expected"
    );
    assert!(
        std::fs::read_dir(&snaps)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().starts_with("snap-")),
        "no periodic snap-*.json written"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_rejects_malformed_input_with_typed_errors() {
    let dir = tmpdir("serve-bad");
    std::fs::create_dir_all(&dir).unwrap();

    // A log that goes bad mid-stream: the daemon must exit nonzero with a
    // typed ingest error, not a panic or a silent success.
    let log = dir.join("bad.jsonl");
    std::fs::write(&log, "{\"event\":\"epoch\",\"at\":60}\nnot json at all\n").unwrap();
    let bad = cli(&[
        "serve",
        "--source",
        &format!("jsonl:{}", log.to_str().unwrap()),
    ]);
    assert!(!bad.status.success());
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("error: ingest:"), "{stderr}");

    // Bad source schemes and shard/region mismatches are caught up front.
    let scheme = cli(&["serve", "--source", "ftp://example"]);
    assert!(!scheme.status.success());
    assert!(String::from_utf8_lossy(&scheme.stderr).contains("--source"));

    let mismatch = cli(&[
        "serve",
        "--source",
        &format!("jsonl:{}", log.to_str().unwrap()),
        "--shards",
        "4",
        "--regions",
        "2",
    ]);
    assert!(!mismatch.status.success());
    assert!(String::from_utf8_lossy(&mismatch.stderr).contains("--regions"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_shard_counts_print_identical_canonical_reports() {
    // The acceptance criterion at CLI level, small scale: the same
    // regional stream at 1, 2 and 4 shards prints the same decisions and
    // metrics byte-for-byte under --canonical (the "shard(s)" diagnostics
    // line legitimately varies — per-shard peaks and compaction timing).
    let canonical = |shards: &str| {
        let out = cli(&[
            "replay",
            "--tasks",
            "3000",
            "--drivers",
            "60",
            "--seed",
            "9",
            "--regions",
            "4",
            "--shards",
            shards,
            "--canonical",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(stdout.contains(&format!("{shards} shard(s)")), "{stdout}");
        stdout
            .lines()
            .filter(|l| !l.contains("shard(s)"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let one = canonical("1");
    assert_eq!(one, canonical("2"), "2 shards diverged from 1");
    assert_eq!(one, canonical("4"), "4 shards diverged from 1");

    let bad = cli(&["replay", "--shards", "4", "--regions", "2"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--regions"));
}
