//! End-to-end tests of the `rideshare` CLI binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rideshare"))
        .args(args)
        .output()
        .expect("spawn rideshare binary")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rideshare-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn generate_summary_solve_simulate_bound_pipeline() {
    let dir = tmpdir("pipeline");
    let dir_s = dir.to_str().unwrap();

    let gen = cli(&[
        "generate",
        "--tasks",
        "50",
        "--drivers",
        "6",
        "--seed",
        "11",
        "--out",
        dir_s,
    ]);
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );
    assert!(dir.join("trips.csv").exists());
    assert!(dir.join("drivers.csv").exists());

    let summary = cli(&["summary", "--dir", dir_s]);
    assert!(summary.status.success());
    let text = String::from_utf8_lossy(&summary.stdout);
    assert!(text.contains("6 drivers × 50 tasks"), "{text}");
    assert!(text.contains("GA guarantee"));

    let solve = cli(&["solve", "--dir", dir_s]);
    assert!(solve.status.success());
    assert!(String::from_utf8_lossy(&solve.stdout).contains("greedy:"));

    for policy in ["margin", "nearest"] {
        let sim = cli(&["simulate", "--dir", dir_s, "--policy", policy]);
        assert!(sim.status.success());
        assert!(String::from_utf8_lossy(&sim.stdout).contains("online: served"));
    }

    let bound = cli(&["bound", "--dir", dir_s]);
    assert!(bound.status.success());
    assert!(String::from_utf8_lossy(&bound.stdout).contains("Z_f* ="));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generate_is_deterministic_in_seed() {
    let a = tmpdir("det-a");
    let b = tmpdir("det-b");
    for dir in [&a, &b] {
        let out = cli(&[
            "generate",
            "--tasks",
            "20",
            "--drivers",
            "3",
            "--seed",
            "99",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success());
    }
    let ta = std::fs::read_to_string(a.join("trips.csv")).unwrap();
    let tb = std::fs::read_to_string(b.join("trips.csv")).unwrap();
    assert_eq!(ta, tb);
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn delivery_flag_changes_structure() {
    let rides = tmpdir("rides");
    let deliv = tmpdir("deliv");
    for (dir, extra) in [(&rides, None), (&deliv, Some("--delivery"))] {
        let mut args = vec![
            "generate",
            "--tasks",
            "30",
            "--drivers",
            "3",
            "--seed",
            "5",
            "--out",
            dir.to_str().unwrap(),
        ];
        if let Some(f) = extra {
            args.push(f);
        }
        assert!(cli(&args).status.success());
    }
    let a = std::fs::read_to_string(rides.join("trips.csv")).unwrap();
    let b = std::fs::read_to_string(deliv.join("trips.csv")).unwrap();
    assert_ne!(a, b, "delivery preset must produce a different workload");
    let _ = std::fs::remove_dir_all(&rides);
    let _ = std::fs::remove_dir_all(&deliv);
}

#[test]
fn bad_input_reports_errors() {
    let nothing = cli(&["solve", "--dir", "/nonexistent-rideshare-dir"]);
    assert!(!nothing.status.success());
    assert!(String::from_utf8_lossy(&nothing.stderr).contains("error:"));

    let unknown = cli(&["frobnicate"]);
    assert!(!unknown.status.success());

    let no_args = cli(&[]);
    assert!(!no_args.status.success());

    let help = cli(&["help"]);
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("USAGE"));
}

#[test]
fn replay_streams_in_bounded_memory() {
    // The streaming subcommand end to end: a small synthetic stream,
    // instant and batched policies, peak-resident line included.
    for policy in ["margin", "batch-2m"] {
        let out = cli(&[
            "replay",
            "--tasks",
            "2000",
            "--drivers",
            "40",
            "--seed",
            "3",
            "--policy",
            policy,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("served"), "{stdout}");
        assert!(stdout.contains("peak resident state"), "{stdout}");
        assert!(stdout.contains("tasks/s"), "{stdout}");
    }

    let bad = cli(&["replay", "--policy", "frobnicate"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown policy"));
}

#[test]
fn replay_shard_counts_print_identical_canonical_reports() {
    // The acceptance criterion at CLI level, small scale: the same
    // regional stream at 1, 2 and 4 shards prints the same decisions and
    // metrics byte-for-byte under --canonical (the "shard(s)" diagnostics
    // line legitimately varies — per-shard peaks and compaction timing).
    let canonical = |shards: &str| {
        let out = cli(&[
            "replay",
            "--tasks",
            "3000",
            "--drivers",
            "60",
            "--seed",
            "9",
            "--regions",
            "4",
            "--shards",
            shards,
            "--canonical",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(stdout.contains(&format!("{shards} shard(s)")), "{stdout}");
        stdout
            .lines()
            .filter(|l| !l.contains("shard(s)"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let one = canonical("1");
    assert_eq!(one, canonical("2"), "2 shards diverged from 1");
    assert_eq!(one, canonical("4"), "4 shards diverged from 1");

    let bad = cli(&["replay", "--shards", "4", "--regions", "2"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--regions"));
}
