//! Snapshot regression of the sweep report: schema *and* numbers.
//!
//! The canonical (timing-free) JSON report of the tiny scenario matrix is
//! checked in at `tests/snapshots/sweep_tiny.json`; this test re-runs the
//! sweep and diffs byte-for-byte. CI runs the same matrix through the
//! `rideshare sweep` binary, so any change to the report schema, the
//! serialisation, a scenario preset, a policy, or a solver result shows up
//! as a snapshot diff.
//!
//! To accept an intentional change:
//!
//! ```sh
//! UPDATE_SNAPSHOTS=1 cargo test --test sweep_snapshot
//! ```

use std::path::PathBuf;

use rideshare::prelude::*;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/sweep_tiny.json")
}

/// The exact matrix CI sweeps: tiny catalog × default policy set.
fn tiny_matrix_report(threads: usize) -> SweepReport {
    run_sweep(
        &Scenario::tiny_catalog(),
        &PolicySpec::default_set(),
        SweepOptions {
            threads,
            compute_bound: true,
        },
    )
}

#[test]
fn canonical_report_matches_checked_in_snapshot() {
    let got = tiny_matrix_report(1).to_json(false);
    let path = snapshot_path();
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, &got).expect("rewrite snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    assert_eq!(
        got,
        want,
        "sweep report drifted from {}; rerun with UPDATE_SNAPSHOTS=1 if intentional",
        path.display()
    );
}

#[test]
fn parallel_run_matches_snapshot_too() {
    // The acceptance bar: a sharded run must be byte-identical to the
    // single-threaded run. Compare in-memory (not via the snapshot file:
    // tests run concurrently, and under UPDATE_SNAPSHOTS the sibling test
    // rewrites the file mid-run); transitively, via the sibling test, the
    // parallel run matches the checked-in snapshot as well.
    let sequential = tiny_matrix_report(1).to_json(false);
    let parallel = tiny_matrix_report(4).to_json(false);
    assert_eq!(parallel, sequential, "parallel sweep diverged");
}
