//! Integration tests of the Fig. 2 adversarial family (Lemma 3): the
//! 1/(D+1) approximation ratio of GA is tight, verified end-to-end on
//! geometric instances through the real solvers.

use rideshare::core::tightness::fig2_instance;
use rideshare::prelude::*;

#[test]
fn greedy_profit_is_one_across_family() {
    for d in 1..=6 {
        for eps in [0.01, 0.05, 0.2] {
            let inst = fig2_instance(d, eps);
            let ga = solve_greedy(&inst.market, Objective::Profit);
            ga.assignment.validate(&inst.market).unwrap();
            let p = ga
                .assignment
                .objective_value(&inst.market, Objective::Profit)
                .as_f64();
            assert!((p - 1.0).abs() < 1e-3, "D={d} eps={eps}: GA profit {p}");
        }
    }
}

#[test]
fn exact_optimum_matches_lemma_three() {
    for d in 1..=3 {
        let inst = fig2_instance(d, 0.1);
        let exact = solve_exact(&inst.market, Objective::Profit, ExactOptions::default())
            .expect("small instance solves exactly");
        assert!(exact.proven_optimal);
        exact.assignment.validate(&inst.market).unwrap();
        let want = (d as f64 + 1.0) * 0.9;
        assert!(
            (exact.objective_value - want).abs() < 1e-3,
            "D={d}: Z* = {} want {want}",
            exact.objective_value
        );
        // The optimum spreads work across all D+1 drivers.
        assert_eq!(exact.assignment.active_driver_count(), d + 1);
    }
}

#[test]
fn ratio_converges_to_theoretical_floor_as_eps_shrinks() {
    let d = 3;
    let mut last_gap = f64::INFINITY;
    for eps in [0.2, 0.05, 0.01] {
        let inst = fig2_instance(d, eps);
        let ratio = 1.0 / inst.expected_opt();
        let floor = 1.0 / (d as f64 + 1.0);
        let gap = ratio - floor;
        assert!(gap > 0.0, "ratio must stay above the floor");
        assert!(gap < last_gap, "gap must shrink as eps shrinks");
        last_gap = gap;
    }
}

#[test]
fn lp_bound_brackets_the_family() {
    for d in 1..=4 {
        let inst = fig2_instance(d, 0.05);
        let ub = lp_upper_bound(
            &inst.market,
            Objective::Profit,
            UpperBoundOptions::default(),
        )
        .unwrap();
        assert!(
            ub.bound + 1e-4 >= inst.expected_opt(),
            "D={d}: Z_f* {} below OPT {}",
            ub.bound,
            inst.expected_opt()
        );
    }
}

#[test]
fn online_heuristics_on_adversarial_instance_stay_feasible() {
    // The Fig. 2 instance is an offline construction, but the online
    // simulator must still replay it without violating feasibility.
    let inst = fig2_instance(4, 0.05);
    let sim = Simulator::new(&inst.market);
    for policy in [
        &mut MaxMargin::new() as &mut dyn DispatchPolicy,
        &mut NearestDriver::with_seed(0),
    ] {
        let r = sim.run(policy, SimulationOptions::default());
        validate_online(&inst.market, &r.assignment).unwrap();
    }
}
