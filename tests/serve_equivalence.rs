//! The daemon test harness: `rideshare serve` is live-equal to replay.
//!
//! The serve daemon's contract is that ingestion is **not a different
//! dispatcher**: over the same trace, a drained daemon — fed in-process,
//! from a JSONL or CSV file, or over a real TCP socket — produces
//! decisions and merged [`StreamMetrics`] *byte-identical* to
//! [`replay_stream`] / [`replay_sharded`], for every shard-stable policy
//! and shard counts {1, 2, 4}. This suite pins that, plus the daemon's
//! operational laws:
//!
//! - **equivalence**: the porto-regions catalog scenario through the full
//!   policy × shard × transport matrix (raw decision equality, exact
//!   `StreamMetrics ==`),
//! - **drain semantics**: EOF without an end-of-stream marker, and a TCP
//!   peer closing on a frame boundary, both drain cleanly through the
//!   engines' normal finish path,
//! - **fault injection**: a truncated frame, a garbage length prefix, a
//!   non-monotonic timestamp, and a mid-window disconnect each produce a
//!   clean typed [`IngestError`] *and* a drained, valid partial result —
//!   never a panic, never a hang (every daemon runs under a watchdog
//!   timeout, and no test is `#[should_panic]`),
//! - an `#[ignore]`d heavy acceptance run: one million tasks framed over
//!   a real socket, sharded 4 ways, metrics exactly equal to sequential
//!   replay (`cargo test --release --test serve_equivalence -- --ignored`).

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

use rideshare::bench::Scenario;
use rideshare::online::{
    event_to_line, event_to_wire, DispatchEvent, IngestError, IngestFormat, IngestSource,
    ServeConfig, ServeDaemon, ServeStop, SimulationResult,
};
use rideshare::prelude::*;
use rideshare::trace::wire::{encode_frame, to_csv_line, to_json_line, WireEvent};

/// How long any single daemon run may take before the watchdog trips.
const WATCHDOG: Duration = Duration::from_secs(120);

/// Collects decisions *and* exact metrics from one run.
struct DuoSink {
    result: CollectingSink,
    metrics: StreamMetrics,
}

impl DuoSink {
    fn new() -> Self {
        Self {
            result: CollectingSink::new(),
            metrics: StreamMetrics::hourly(),
        }
    }
}

impl StreamSink for DuoSink {
    fn driver_online(&mut self, driver: &Driver) {
        self.result.driver_online(driver);
        self.metrics.driver_online(driver);
    }

    fn dispatched(&mut self, task: &Task, event: &DispatchEvent) {
        self.result.dispatched(task, event);
        self.metrics.dispatched(task, event);
    }

    fn rejected(&mut self, task: &Task, decision_time: Timestamp) {
        self.result.rejected(task, decision_time);
        StreamSink::rejected(&mut self.metrics, task, decision_time);
    }
}

fn policy_matrix() -> Vec<ShardPolicySpec> {
    vec![
        ShardPolicySpec::MaxMargin,
        ShardPolicySpec::Nearest { seed: 0 },
        ShardPolicySpec::Batched {
            window: TimeDelta::from_mins(3),
            matcher: MatcherKind::Greedy,
        },
        ShardPolicySpec::Batched {
            window: TimeDelta::from_mins(3),
            matcher: MatcherKind::Optimal,
        },
    ]
}

fn policy_label(spec: ShardPolicySpec) -> &'static str {
    match spec {
        ShardPolicySpec::MaxMargin => "margin",
        ShardPolicySpec::Nearest { .. } => "nearest",
        ShardPolicySpec::Batched {
            matcher: MatcherKind::Greedy,
            ..
        } => "batch-3m",
        ShardPolicySpec::Batched {
            matcher: MatcherKind::Optimal,
            ..
        } => "batch-opt-3m",
    }
}

/// The pinned trace: the porto-regions catalog scenario (4 regions, so
/// every shard count in {1, 2, 4} has a legal partition).
fn scenario_fixture() -> (Market, TraceConfig, Vec<StreamEvent>) {
    let scenario = Scenario::by_name("porto-regions").expect("catalog scenario");
    let config = scenario.trace_config().expect("trace-backed").clone();
    let market = scenario.build_market();
    let events: Vec<StreamEvent> = market_events(&market);
    (market, config, events)
}

/// What replay produces: the oracle the daemon must match byte-for-byte.
fn replay_oracle(
    market: &Market,
    config: &TraceConfig,
    spec: ShardPolicySpec,
    shards: usize,
) -> (SimulationResult, StreamMetrics) {
    let mut sink = DuoSink::new();
    if shards == 1 {
        let mut holder = spec.holder();
        let mut policy = holder.as_policy();
        let _ = replay_stream(
            market.speed(),
            market_events(market),
            &mut policy,
            StreamOptions::default(),
            &mut sink,
        );
    } else {
        let partitioner = BoxPartitioner::new(config.region_boxes());
        let _ = replay_sharded(
            market.speed(),
            market_events(market),
            spec,
            &partitioner,
            ShardOptions::new(shards).validate(false),
            &mut sink,
        );
    }
    (sink.result.into_result(), sink.metrics)
}

/// Runs the daemon over `source` under a watchdog; panics (with the test
/// context) if it does not come back within [`WATCHDOG`].
fn run_daemon(
    mut source: Box<dyn IngestSource + Send>,
    spec: ShardPolicySpec,
    config: &TraceConfig,
    shards: usize,
    ctx: &str,
) -> (
    rideshare::online::ServeOutcome,
    SimulationResult,
    StreamMetrics,
) {
    let boxes = config.region_boxes();
    let (tx, rx) = mpsc::channel();
    let ctx_owned = ctx.to_string();
    std::thread::spawn(move || {
        let partitioner = BoxPartitioner::new(boxes);
        let mut daemon = ServeDaemon::new(
            SpeedModel::urban(),
            spec,
            ServeConfig::new(shards)
                .shard_options(ShardOptions::new(shards).validate(false))
                .snapshot_every(TimeDelta::from_hours(1)),
        );
        if shards > 1 {
            daemon = daemon.with_partitioner(&partitioner);
        }
        let mut sink = DuoSink::new();
        let outcome = daemon.run(source.as_mut(), &mut sink, |_, _| {}, |_, _| {});
        // A send failure means the watchdog already gave up on us.
        let _ = tx.send((outcome, sink.result.into_result(), sink.metrics));
    });
    rx.recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("{ctx_owned}: daemon hung past the watchdog"))
}

/// Byte-identity of a daemon run against the replay oracle. Within a
/// batched window the sequential engine emits in matcher-commit order and
/// the sharded merge in `(decision epoch, task id)` order — same records,
/// one canonical serialisation — so both sides are sorted into that
/// canonical order before comparing (a no-op for instant policies).
fn assert_equal(
    got: (&SimulationResult, &StreamMetrics),
    want: (&SimulationResult, &StreamMetrics),
    ctx: &str,
) {
    let canon = |r: &SimulationResult| {
        let mut events = r.events.clone();
        events.sort_by_key(|e| (e.decision_time, e.task.index()));
        events
    };
    assert_eq!(got.0.dispatch, want.0.dispatch, "{ctx}: dispatch");
    assert_eq!(canon(got.0), canon(want.0), "{ctx}: decision records");
    assert_eq!(got.0.served, want.0.served, "{ctx}: served");
    assert_eq!(got.0.rejected, want.0.rejected, "{ctx}: rejected");
    assert_eq!(got.1, want.1, "{ctx}: metrics (exact)");
}

/// Writes the event log (plus end-of-stream marker) as `format` text.
fn write_event_log(path: &std::path::Path, events: &[StreamEvent], format: IngestFormat) {
    let mut text = String::new();
    for e in events {
        text.push_str(&event_to_line(e, format));
        text.push('\n');
    }
    let eos = match format {
        IngestFormat::Jsonl => to_json_line(&WireEvent::Eos),
        IngestFormat::Csv => to_csv_line(&WireEvent::Eos),
    };
    text.push_str(&eos);
    text.push('\n');
    std::fs::write(path, text).unwrap();
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rideshare-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Feeds `events` (and an EOS frame unless `truncate_at` cuts first) over
/// a fresh TCP connection; returns the source end. `truncate_at = Some(n)`
/// sends only the first `n` bytes of the full byte stream and closes.
fn tcp_feed(
    events: Vec<StreamEvent>,
    eos: bool,
    truncate_at: Option<usize>,
) -> Box<dyn IngestSource + Send> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut bytes = Vec::new();
        for e in &events {
            bytes.extend_from_slice(&encode_frame(&event_to_wire(e)));
        }
        if eos {
            bytes.extend_from_slice(&encode_frame(&WireEvent::Eos));
        }
        if let Some(n) = truncate_at {
            bytes.truncate(n);
        }
        let mut conn = TcpStream::connect(addr).unwrap();
        // Dribble in uneven chunks so the decoder sees partial frames.
        for chunk in bytes.chunks(97) {
            conn.write_all(chunk).unwrap();
        }
    });
    let (conn, _) = listener.accept().unwrap();
    Box::new(rideshare::online::TcpSource::from_stream(conn))
}

// ---------------------------------------------------------------------
// Equivalence: policy × shards × transport.
// ---------------------------------------------------------------------

/// In-process ingestion (the pure daemon overhead path): full policy ×
/// shard matrix against the replay oracle.
#[test]
fn in_process_daemon_matches_replay_matrix() {
    let (market, config, events) = scenario_fixture();
    for spec in policy_matrix() {
        for shards in [1usize, 2, 4] {
            let ctx = format!("in-process × {} × {shards} shards", policy_label(spec));
            let want = replay_oracle(&market, &config, spec, shards);
            let source = Box::new(rideshare::online::IterSource::new(
                events.clone().into_iter(),
            ));
            let (outcome, result, metrics) = run_daemon(source, spec, &config, shards, &ctx);
            assert_eq!(outcome.report.stop, ServeStop::Drained, "{ctx}");
            assert!(outcome.error.is_none(), "{ctx}");
            assert_eq!(outcome.report.events, events.len(), "{ctx}: event count");
            assert!(outcome.report.windows > 0, "{ctx}: no windows closed");
            assert!(outcome.report.snapshots > 0, "{ctx}: no snapshots fired");
            assert_equal((&result, &metrics), (&want.0, &want.1), &ctx);
        }
    }
}

/// File ingestion: the trace round-trips through JSONL and CSV text (f64s
/// via shortest-round-trip formatting) and still reproduces replay
/// byte-for-byte.
#[test]
fn file_daemon_matches_replay() {
    let (market, config, events) = scenario_fixture();
    let dir = tmpdir("files");
    for format in [IngestFormat::Jsonl, IngestFormat::Csv] {
        let name = match format {
            IngestFormat::Jsonl => "day.jsonl",
            IngestFormat::Csv => "day.csv",
        };
        let path = dir.join(name);
        write_event_log(&path, &events, format);
        for spec in [
            ShardPolicySpec::MaxMargin,
            ShardPolicySpec::Batched {
                window: TimeDelta::from_mins(3),
                matcher: MatcherKind::Greedy,
            },
        ] {
            for shards in [1usize, 4] {
                let ctx = format!("{name} × {} × {shards} shards", policy_label(spec));
                let want = replay_oracle(&market, &config, spec, shards);
                let source: Box<dyn IngestSource + Send> =
                    Box::new(rideshare::online::FileSource::open(&path, format).unwrap());
                let (outcome, result, metrics) = run_daemon(source, spec, &config, shards, &ctx);
                assert_eq!(outcome.report.stop, ServeStop::Drained, "{ctx}");
                assert_equal((&result, &metrics), (&want.0, &want.1), &ctx);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Socket ingestion: the trace round-trips through the length-prefixed
/// binary wire format over a real TCP connection, dribbled in uneven
/// chunks, and still reproduces replay byte-for-byte.
#[test]
fn tcp_daemon_matches_replay() {
    let (market, config, events) = scenario_fixture();
    for spec in [
        ShardPolicySpec::MaxMargin,
        ShardPolicySpec::Batched {
            window: TimeDelta::from_mins(3),
            matcher: MatcherKind::Greedy,
        },
    ] {
        for shards in [1usize, 2, 4] {
            let ctx = format!("tcp × {} × {shards} shards", policy_label(spec));
            let want = replay_oracle(&market, &config, spec, shards);
            let source = tcp_feed(events.clone(), true, None);
            let (outcome, result, metrics) = run_daemon(source, spec, &config, shards, &ctx);
            assert_eq!(outcome.report.stop, ServeStop::Drained, "{ctx}");
            assert!(outcome.error.is_none(), "{ctx}");
            assert_equal((&result, &metrics), (&want.0, &want.1), &ctx);
        }
    }
}

// ---------------------------------------------------------------------
// Drain semantics.
// ---------------------------------------------------------------------

/// A file with no end-of-stream marker still drains cleanly at EOF
/// (non-follow mode), through the engines' normal finish path.
#[test]
fn eof_without_marker_drains_cleanly() {
    let (market, config, events) = scenario_fixture();
    let dir = tmpdir("eof");
    let path = dir.join("no-eos.jsonl");
    let mut text = String::new();
    for e in &events {
        text.push_str(&event_to_line(e, IngestFormat::Jsonl));
        text.push('\n');
    }
    std::fs::write(&path, text).unwrap();
    let want = replay_oracle(&market, &config, ShardPolicySpec::MaxMargin, 1);
    let source: Box<dyn IngestSource + Send> =
        Box::new(rideshare::online::FileSource::open(&path, IngestFormat::Jsonl).unwrap());
    let (outcome, result, metrics) =
        run_daemon(source, ShardPolicySpec::MaxMargin, &config, 1, "eof-drain");
    assert_eq!(outcome.report.stop, ServeStop::Drained);
    assert!(outcome.error.is_none());
    assert_equal((&result, &metrics), (&want.0, &want.1), "eof-drain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A TCP peer closing exactly on a frame boundary (no EOS frame) is a
/// clean drain, not an error.
#[test]
fn tcp_close_on_frame_boundary_drains_cleanly() {
    let (market, config, events) = scenario_fixture();
    let want = replay_oracle(&market, &config, ShardPolicySpec::MaxMargin, 1);
    let source = tcp_feed(events, false, None);
    let (outcome, result, metrics) = run_daemon(
        source,
        ShardPolicySpec::MaxMargin,
        &config,
        1,
        "tcp-boundary-close",
    );
    assert_eq!(outcome.report.stop, ServeStop::Drained);
    assert!(outcome.error.is_none());
    assert_equal(
        (&result, &metrics),
        (&want.0, &want.1),
        "tcp-boundary-close",
    );
}

// ---------------------------------------------------------------------
// Fault injection: typed errors, drained partial results, no panics.
// ---------------------------------------------------------------------

/// A connection cut mid-frame surfaces `IngestError::Disconnected` naming
/// the dangling bytes, and everything before the cut drained validly.
#[test]
fn truncated_frame_is_a_typed_error_with_partial_result() {
    let (_, config, events) = scenario_fixture();
    // Total byte stream minus 3 bytes cuts the final (EOS) frame mid-body.
    let total: usize = events
        .iter()
        .map(|e| encode_frame(&event_to_wire(e)).len())
        .sum::<usize>()
        + encode_frame(&WireEvent::Eos).len();
    let sent_events = events.len();
    let source = tcp_feed(events, true, Some(total - 3));
    let (outcome, result, _metrics) = run_daemon(
        source,
        ShardPolicySpec::MaxMargin,
        &config,
        1,
        "truncated-frame",
    );
    assert_eq!(outcome.report.stop, ServeStop::Error);
    assert!(
        matches!(outcome.error, Some(IngestError::Disconnected { pending_bytes }) if pending_bytes > 0),
        "want Disconnected, got {:?}",
        outcome.error
    );
    // Every complete frame before the cut was ingested and decided.
    assert_eq!(outcome.report.events, sent_events);
    assert_eq!(
        result.served + result.rejected,
        outcome.report.summary.tasks
    );
}

/// A garbage length prefix (absurd frame size) is rejected as a framing
/// error before any allocation, with a valid drained prefix.
#[test]
fn garbage_length_prefix_is_a_typed_error() {
    let (_, config, events) = scenario_fixture();
    let prefix = 25usize; // a few real events first
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let feed: Vec<StreamEvent> = events[..prefix].to_vec();
    std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).unwrap();
        for e in &feed {
            conn.write_all(&encode_frame(&event_to_wire(e))).unwrap();
        }
        conn.write_all(&0xFFFF_FFFFu32.to_le_bytes()).unwrap();
        conn.write_all(&[0u8; 64]).unwrap();
    });
    let (conn, _) = listener.accept().unwrap();
    let source: Box<dyn IngestSource + Send> =
        Box::new(rideshare::online::TcpSource::from_stream(conn));
    let (outcome, _result, _metrics) = run_daemon(
        source,
        ShardPolicySpec::MaxMargin,
        &config,
        1,
        "garbage-length",
    );
    assert_eq!(outcome.report.stop, ServeStop::Error);
    assert!(
        matches!(
            outcome.error,
            Some(IngestError::Frame(
                rideshare::trace::wire::WireError::FrameTooLarge { .. }
            ))
        ),
        "want FrameTooLarge, got {:?}",
        outcome.error
    );
    assert_eq!(outcome.report.events, prefix);
}

/// A non-monotonic event timestamp is refused by the admission guard as a
/// typed error — it must never reach the engine (whose contract violation
/// response is a panic).
#[test]
fn non_monotonic_timestamp_is_a_typed_error() {
    let (_, config, events) = scenario_fixture();
    // Re-order two task publishes to violate monotonicity.
    let mut tampered = events;
    let tasks: Vec<usize> = tampered
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, StreamEvent::TaskPublished(_)))
        .map(|(i, _)| i)
        .take(12)
        .collect();
    tampered.swap(tasks[2], tasks[10]);
    let dir = tmpdir("monotonic");
    let path = dir.join("tampered.jsonl");
    write_event_log(&path, &tampered, IngestFormat::Jsonl);
    let source: Box<dyn IngestSource + Send> =
        Box::new(rideshare::online::FileSource::open(&path, IngestFormat::Jsonl).unwrap());
    let (outcome, result, _metrics) = run_daemon(
        source,
        ShardPolicySpec::MaxMargin,
        &config,
        1,
        "non-monotonic",
    );
    assert_eq!(outcome.report.stop, ServeStop::Error);
    assert!(
        matches!(outcome.error, Some(IngestError::NonMonotonic { .. })),
        "want NonMonotonic, got {:?}",
        outcome.error
    );
    // The admitted prefix drained to a valid partial result.
    assert_eq!(
        result.served + result.rejected,
        outcome.report.summary.tasks
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A disconnect in the middle of an open batch window: the held orders
/// drain through the normal close path — a valid partial result plus the
/// typed error, and critically no hang waiting for the window to fill.
#[test]
fn mid_window_disconnect_drains_held_orders() {
    let (_, config, events) = scenario_fixture();
    // Cut mid-frame somewhere past the driver preamble, so a 3-minute
    // batch window is open (orders held, undecided) at the disconnect.
    let drivers = events
        .iter()
        .filter(|e| matches!(e, StreamEvent::DriverOnline(_)))
        .count();
    let keep = drivers + 40; // complete frames to send before the cut
    let cut: usize = events[..keep]
        .iter()
        .map(|e| encode_frame(&event_to_wire(e)).len())
        .sum::<usize>()
        + 7; // + a partial next frame
    let spec = ShardPolicySpec::Batched {
        window: TimeDelta::from_mins(3),
        matcher: MatcherKind::Greedy,
    };
    let source = tcp_feed(events, true, Some(cut));
    let (outcome, result, _metrics) = run_daemon(source, spec, &config, 1, "mid-window");
    assert_eq!(outcome.report.stop, ServeStop::Error);
    assert!(
        matches!(outcome.error, Some(IngestError::Disconnected { .. })),
        "want Disconnected, got {:?}",
        outcome.error
    );
    assert_eq!(outcome.report.events, keep);
    // Every task sent was decided: the open window drained on the fault.
    assert_eq!(outcome.report.summary.tasks, 40);
    assert_eq!(result.served + result.rejected, 40);
}

// ---------------------------------------------------------------------
// Heavy acceptance.
// ---------------------------------------------------------------------

/// One million tasks framed over a real TCP socket into a 4-shard daemon:
/// metrics exactly equal sequential in-process replay. Release only:
/// `cargo test --release --test serve_equivalence -- --ignored`.
#[test]
#[ignore = "heavy: 1M-task TCP serve, release only"]
fn million_task_tcp_serve_matches_replay() {
    let config = TraceConfig::porto()
        .with_seed(0)
        .with_task_count(1_000_000)
        .with_driver_count(450, DriverModel::Hitchhiking)
        .with_regions(4);
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };

    // Oracle: the sequential lazy pipeline, all in process.
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
    let options = StreamOptions::default().grid(bbox);
    let mut want = StreamMetrics::hourly();
    let mut mm = MaxMargin::new();
    let mut policy = StreamPolicy::Instant(&mut mm);
    let mut engine = StreamEngine::new(speed, options);
    for shift in stream.drivers() {
        engine.push(
            StreamEvent::DriverOnline(Driver::from(shift)),
            &mut policy,
            &mut want,
        );
    }
    for trip in stream {
        engine.push(
            StreamEvent::TaskPublished(pricer.price(&trip)),
            &mut policy,
            &mut want,
        );
    }
    let want_summary = engine.finish(&mut policy, &mut want);

    // Daemon: the same events framed over a real socket, 4 shards.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer_config = config.clone();
    let writer = std::thread::spawn(move || {
        let stream = writer_config.stream();
        let speed = stream.speed();
        let bbox = stream.bounding_box();
        let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
        let _ = speed;
        let conn = TcpStream::connect(addr).unwrap();
        let mut out = std::io::BufWriter::with_capacity(1 << 20, conn);
        for shift in stream.drivers() {
            let e = StreamEvent::DriverOnline(Driver::from(shift));
            out.write_all(&encode_frame(&event_to_wire(&e))).unwrap();
        }
        for trip in stream {
            let e = StreamEvent::TaskPublished(pricer.price(&trip));
            out.write_all(&encode_frame(&event_to_wire(&e))).unwrap();
        }
        out.write_all(&encode_frame(&WireEvent::Eos)).unwrap();
        out.flush().unwrap();
    });
    let (conn, _) = listener.accept().unwrap();
    let partitioner = BoxPartitioner::new(config.region_boxes());
    let daemon = ServeDaemon::new(
        SpeedModel::urban(),
        ShardPolicySpec::MaxMargin,
        ServeConfig::new(4).shard_options(
            ShardOptions::new(4)
                .stream(StreamOptions::default().grid(bbox))
                .validate(false),
        ),
    )
    .with_partitioner(&partitioner);
    let mut got = StreamMetrics::hourly();
    let mut source = rideshare::online::TcpSource::from_stream(conn);
    let outcome = daemon.run(&mut source, &mut got, |_, _| {}, |_, _| {});
    writer.join().unwrap();

    assert_eq!(outcome.report.stop, ServeStop::Drained);
    assert!(outcome.error.is_none());
    assert_eq!(outcome.report.summary.tasks, 1_000_000);
    assert_eq!(outcome.report.summary.served, want_summary.served);
    assert_eq!(got, want, "1M-task TCP serve metrics diverged from replay");
}
