//! The clairvoyance regression suite (the acceptance tests for the batch
//! engine rebuild).
//!
//! The original `run_batched` computed a batch decision time and then let
//! drivers depart at task *publish* time — dispatching on a decision that
//! did not exist yet. These tests pin the corrected semantics:
//!
//! - a task published at the window start whose only driver is free
//!   immediately still departs no earlier than the batch decision time,
//! - batched profit with `W > 0` never exceeds the same market's offline
//!   greedy (time travel was the only way to beat it from inside a
//!   window),
//! - grid-pruned batch candidate generation is byte-identical to the
//!   full-scan path on catalog scenarios (the speed side is measured by
//!   the `batch_dispatch` Criterion bench on `porto-large`).

use rideshare::online::{run_batched_with, BatchOptions, MatcherKind};
use rideshare::prelude::*;

/// One driver sitting exactly on the pickup of one task, both live from
/// t = 0 with deadlines far beyond the window.
fn single_driver_market() -> Market {
    let at = GeoPoint::new(41.15, -8.61);
    let task = rideshare::core::Task {
        id: TaskId::new(0),
        publish_time: Timestamp::from_secs(0),
        origin: at,
        destination: at.offset_km(0.0, 2.0),
        pickup_deadline: Timestamp::from_secs(3_600),
        completion_deadline: Timestamp::from_secs(7_200),
        duration: TimeDelta::from_secs(300),
        price: Money::new(8.0),
        valuation: Money::new(9.0),
        service_cost: Money::ZERO,
    };
    let driver = rideshare::core::Driver {
        id: DriverId::new(0),
        source: at,
        destination: at,
        shift_start: Timestamp::from_secs(0),
        shift_end: Timestamp::from_secs(50_000),
        model: DriverModel::HomeWorkHome,
    };
    Market::new(
        vec![driver],
        vec![task],
        SpeedModel::new(60.0, 1.0, 0.1),
        None,
    )
}

#[test]
fn departure_waits_for_the_batch_decision() {
    // Task published at the window start, driver free immediately *at the
    // pickup*: the clairvoyant engine departed (and arrived) at t = 0.
    // The corrected engine decides at the window end W = 5 min, so the
    // recorded departure/arrival is exactly t = 300.
    let market = single_driver_market();
    let w = TimeDelta::from_mins(5);
    for matcher in [MatcherKind::Greedy, MatcherKind::Optimal] {
        let r = run_batched_with(&market, BatchOptions::with_window(w).matcher(matcher));
        assert_eq!(r.served, 1, "{matcher:?}");
        let e = &r.events[0];
        assert_eq!(e.decision_time, Timestamp::from_secs(300), "{matcher:?}");
        assert!(
            e.arrival >= e.decision_time,
            "{matcher:?}: departure at {} predates the decision at {}",
            e.arrival,
            e.decision_time
        );
        assert_eq!(e.arrival, Timestamp::from_secs(300), "{matcher:?}");
        assert_eq!(
            e.wait,
            TimeDelta::from_secs(300),
            "batching pays its latency"
        );
        validate_online_result(&market, &r).unwrap();
    }
    // Instant dispatch on the same market really is instant — the 300 s
    // above is the cost of batching, not an artefact of the market.
    let instant = Simulator::new(&market).run(&mut MaxMargin::new(), SimulationOptions::default());
    assert_eq!(instant.events[0].arrival, Timestamp::from_secs(0));
}

#[test]
fn batched_never_beats_offline_greedy() {
    // With honest timing, holding orders can only trade latency for
    // matching quality; it cannot manufacture profit the offline greedy
    // (which sees the whole day) could not reach.
    for seed in [11u64, 23, 47] {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(150)
            .with_driver_count(20, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let offline = solve_greedy(&market, Objective::Profit)
            .assignment
            .objective_value(&market, Objective::Profit)
            .as_f64();
        for mins in [1i64, 3, 10, 30] {
            for matcher in [MatcherKind::Greedy, MatcherKind::Optimal] {
                let batched = run_batched_with(
                    &market,
                    BatchOptions::with_window(TimeDelta::from_mins(mins)).matcher(matcher),
                )
                .total_profit(&market)
                .as_f64();
                assert!(
                    batched <= offline + 1e-6,
                    "seed {seed}, W = {mins}m, {matcher:?}: batched {batched} beats \
                     offline greedy {offline}"
                );
            }
        }
    }
}

#[test]
fn grid_oracle_on_catalog_scenarios() {
    // Grid pruning must be invisible in the results on real catalog
    // markets, not just random miniatures: same dispatch vector, same
    // events, byte for byte.
    for name in ["tiny-rides", "tiny-delivery", "porto-day"] {
        let market = Scenario::by_name(name)
            .expect("catalog name")
            .build_market();
        for matcher in [MatcherKind::Greedy, MatcherKind::Optimal] {
            let base = BatchOptions::with_window(TimeDelta::from_mins(3)).matcher(matcher);
            let scan = run_batched_with(&market, base);
            let grid = run_batched_with(&market, base.grid(true));
            assert_eq!(scan.dispatch, grid.dispatch, "{name} {matcher:?}");
            assert_eq!(scan.events, grid.events, "{name} {matcher:?}");
            assert_eq!(scan.rejected, grid.rejected, "{name} {matcher:?}");
        }
    }
}

#[test]
#[ignore = "heavy: run with --ignored (or see the batch_dispatch bench) for the porto-large oracle"]
fn grid_oracle_on_porto_large() {
    let market = Scenario::by_name("porto-large")
        .expect("catalog name")
        .build_market();
    let base = BatchOptions::with_window(TimeDelta::from_mins(3));
    let scan = run_batched_with(&market, base);
    let grid = run_batched_with(&market, base.grid(true));
    assert_eq!(scan.dispatch, grid.dispatch);
    assert_eq!(scan.events, grid.events);
}
