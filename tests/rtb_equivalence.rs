//! The `.rtb` binary-replay equivalence battery.
//!
//! `rideshare export --format bin` freezes the lazy generator→pricer
//! pipeline into a compact fixed-width event log, and
//! `rideshare replay --input <file.rtb>` decodes it zero-copy straight
//! into the dispatch engine. That substitution must be invisible: the
//! binary hop is a transport, not a second dispatcher. This suite pins
//! that from three angles:
//!
//! - **golden corpus byte-pin** — `snapshots/golden_trace.rtb` is a
//!   committed export (seed 7, 120 tasks, 10 drivers, 2 regions).
//!   Re-encoding the same pipeline must reproduce the file byte for byte
//!   (catches encoder layout/endianness drift against bytes written by
//!   the encoder as it was when the corpus was committed), and decoding
//!   the committed bytes must yield exactly the pipeline's events
//!   (catches decoder drift independently of the encoder),
//! - **event identity** — encode → decode over the pipeline stream is the
//!   identity, so everything downstream of the decode is trivially fed
//!   the same inputs,
//! - **replay equivalence** — generator-fed and `.rtb`-fed replays
//!   produce identical decisions *and* exact-equal [`StreamMetrics`]
//!   across the shard-stable policy matrix `{margin, nearest, batch-3m,
//!   batch-opt-3m}` × shard counts `{1, 2, 4}`, grid pruning on — the
//!   acceptance pin for the zero-alloc binary hot path.

use rideshare::online::{
    event_to_wire, wire_to_event, MatcherKind, ShardPolicySpec, SimulationResult,
};
use rideshare::prelude::*;
use rideshare::trace::rtb;

/// The exact `export`/`replay` generator pipeline: announce every shift
/// up front, then publish surge-priced trips in publish order.
struct Pipeline {
    speed: SpeedModel,
    bbox: BoundingBox,
    events: Vec<StreamEvent>,
}

fn pipeline(seed: u64, tasks: usize, drivers: usize, regions: usize) -> Pipeline {
    let mut config = TraceConfig::porto()
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, DriverModel::Hitchhiking);
    if regions > 1 {
        config = config.with_regions(regions);
    }
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
    let mut events: Vec<StreamEvent> = stream
        .drivers()
        .iter()
        .map(|shift| StreamEvent::DriverOnline(Driver::from(shift)))
        .collect();
    for trip in stream {
        events.push(StreamEvent::TaskPublished(pricer.price(&trip)));
    }
    Pipeline {
        speed,
        bbox,
        events,
    }
}

fn encode(events: &[StreamEvent]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let wire: Vec<_> = events.iter().map(event_to_wire).collect();
    rtb::write_events(&mut bytes, &wire).expect("in-memory write cannot fail");
    bytes
}

fn decode(bytes: &[u8]) -> Vec<StreamEvent> {
    rtb::read_events(bytes)
        .expect("committed/encoded corpus must decode")
        .into_iter()
        .filter_map(wire_to_event)
        .collect()
}

/// The committed golden corpus: regenerating the same seeded pipeline
/// must reproduce the committed bytes exactly, and the committed bytes
/// must decode back to the pipeline's events. Either assert failing means
/// the on-disk layout drifted — bump the format version and re-commit the
/// corpus deliberately, never silently.
#[test]
fn golden_corpus_is_byte_pinned() {
    const GOLDEN: &[u8] = include_bytes!("snapshots/golden_trace.rtb");
    let p = pipeline(7, 120, 10, 2);

    let encoded = encode(&p.events);
    assert_eq!(
        encoded.len(),
        GOLDEN.len(),
        "re-encoded corpus length drifted from the committed golden file"
    );
    assert!(
        encoded == GOLDEN,
        "re-encoded corpus bytes drifted from the committed golden file"
    );

    assert_eq!(
        decode(GOLDEN),
        p.events,
        "committed golden bytes no longer decode to the pipeline's events"
    );
}

/// A sink that feeds two sinks at once — decisions into a
/// [`CollectingSink`], aggregates into [`StreamMetrics`] — so one replay
/// pins both without running twice.
struct Tee<'a>(&'a mut CollectingSink, &'a mut StreamMetrics);

impl StreamSink for Tee<'_> {
    fn driver_online(&mut self, driver: &Driver) {
        self.0.driver_online(driver);
        self.1.driver_online(driver);
    }
    fn dispatched(&mut self, task: &Task, event: &rideshare::online::DispatchEvent) {
        self.0.dispatched(task, event);
        self.1.dispatched(task, event);
    }
    fn rejected(&mut self, task: &Task, decision_time: Timestamp) {
        self.0.rejected(task, decision_time);
        self.1.rejected(task, decision_time);
    }
    fn window_closed(&mut self, end: Timestamp) {
        self.0.window_closed(end);
        self.1.window_closed(end);
    }
}

fn policy_matrix() -> Vec<(&'static str, ShardPolicySpec)> {
    vec![
        ("margin", ShardPolicySpec::MaxMargin),
        ("nearest", ShardPolicySpec::Nearest { seed: 0 }),
        (
            "batch-3m",
            ShardPolicySpec::Batched {
                window: TimeDelta::from_mins(3),
                matcher: MatcherKind::Greedy,
            },
        ),
        (
            "batch-opt-3m",
            ShardPolicySpec::Batched {
                window: TimeDelta::from_mins(3),
                matcher: MatcherKind::Optimal,
            },
        ),
    ]
}

fn run(
    p: &Pipeline,
    events: Vec<StreamEvent>,
    spec: ShardPolicySpec,
    shards: usize,
    partitioner: &dyn RegionPartitioner,
) -> (SimulationResult, StreamMetrics) {
    let mut decisions = CollectingSink::new();
    let mut metrics = StreamMetrics::hourly();
    let mut sink = Tee(&mut decisions, &mut metrics);
    if shards == 1 {
        let mut holder = spec.holder();
        let mut policy = holder.as_policy();
        let _ = replay_stream(
            p.speed,
            events,
            &mut policy,
            StreamOptions::default().grid(p.bbox),
            &mut sink,
        );
    } else {
        let _ = replay_sharded(
            p.speed,
            events,
            spec,
            partitioner,
            ShardOptions::new(shards).stream(StreamOptions::default().grid(p.bbox)),
            &mut sink,
        );
    }
    (decisions.into_result(), metrics)
}

/// The acceptance pin: `.rtb`-fed replay is byte-identical — decisions
/// and exact `StreamMetrics` — to generator-fed replay, for every
/// shard-stable policy at 1, 2, and 4 shards.
#[test]
fn rtb_replay_matches_generator_fed_replay_across_policies_and_shards() {
    let mut config = TraceConfig::porto()
        .with_seed(11)
        .with_task_count(2_000)
        .with_driver_count(40, DriverModel::Hitchhiking);
    config = config.with_regions(4);
    let region_boxes = config.region_boxes();
    let p = pipeline(11, 2_000, 40, 4);

    let rtb_events = decode(&encode(&p.events));
    assert_eq!(rtb_events, p.events, "encode→decode must be the identity");

    let partitioner = BoxPartitioner::new(region_boxes);
    for (label, spec) in policy_matrix() {
        for shards in [1usize, 2, 4] {
            let (from_generator, generator_metrics) =
                run(&p, p.events.clone(), spec, shards, &partitioner);
            let (from_rtb, rtb_metrics) = run(&p, rtb_events.clone(), spec, shards, &partitioner);
            assert_eq!(
                from_generator.dispatch, from_rtb.dispatch,
                "dispatch drifted: policy={label} shards={shards}"
            );
            assert_eq!(
                from_generator.events, from_rtb.events,
                "events drifted: policy={label} shards={shards}"
            );
            assert_eq!(
                (from_generator.served, from_generator.rejected),
                (from_rtb.served, from_rtb.rejected),
                "counters drifted: policy={label} shards={shards}"
            );
            assert_eq!(
                generator_metrics, rtb_metrics,
                "StreamMetrics drifted: policy={label} shards={shards}"
            );
        }
    }
}
