//! Multi-process sweep ≡ single-process sweep, byte for byte.
//!
//! `rideshare orchestrate` fans the scenario × policy matrix out to N
//! `rideshare worker` *child processes* through a filesystem spool; the
//! paper's §IV decomposition argument says where a cell runs cannot
//! change what it computes. This suite pins exactly that, with real
//! subprocess workers (`CARGO_BIN_EXE_rideshare`), **exact string
//! equality on the canonical JSON, no tolerances**:
//!
//! - the merged report is byte-identical to an in-process [`run_sweep`]
//!   at worker counts {1, 2, 4},
//! - a worker killed mid-run (deterministic `--crash-once` injection)
//!   costs a requeue and a respawn but not a byte of output,
//! - a unit that fails every attempt (`--crash-on-unit`) poisons with a
//!   typed [`OrchestrateError::Poisoned`] naming it,
//! - `--resume` adopts finished results without recomputing them, and a
//!   spool is never silently reused without it.

use rideshare::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, SystemTime};

const BIN: &str = env!("CARGO_BIN_EXE_rideshare");

fn tmp_spool(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "rideshare-orch-equiv-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The matrix under test: the four tiny catalog scenarios × two
/// policies, with the `Z_f*` bound on so the ratio column's fixed-digit
/// float round trip crosses the process boundary too.
fn matrix() -> (Vec<Scenario>, Vec<PolicySpec>) {
    (
        Scenario::tiny_catalog(),
        vec![PolicySpec::Greedy, PolicySpec::Nearest],
    )
}

fn subprocess_opts(workers: usize) -> OrchestrateOptions {
    OrchestrateOptions {
        workers,
        worker_cmd: vec![BIN.to_string(), "worker".to_string()],
        threads_per_worker: 1,
        compute_bound: true,
        poll_interval: Duration::from_millis(5),
        ..OrchestrateOptions::default()
    }
}

/// The single-process reference. The canonical form drops timing, so it
/// is byte-stable regardless of thread count or machine.
fn reference_json() -> String {
    let (scenarios, policies) = matrix();
    run_sweep(
        &scenarios,
        &policies,
        SweepOptions {
            threads: 2,
            compute_bound: true,
        },
    )
    .to_json(false)
}

#[test]
fn merged_report_is_byte_identical_across_worker_counts() {
    let (scenarios, policies) = matrix();
    let reference = reference_json();
    for workers in [1usize, 2, 4] {
        let dir = tmp_spool(&format!("w{workers}"));
        let outcome = orchestrate(&dir, &scenarios, &policies, &subprocess_opts(workers))
            .expect("orchestrate");
        assert_eq!(outcome.units, scenarios.len(), "workers={workers}");
        assert_eq!(outcome.resumed, 0, "workers={workers}");
        assert_eq!(
            outcome.report.to_json(false),
            reference,
            "workers={workers}: multi-process merge drifted from run_sweep"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_worker_is_retried_without_changing_a_byte() {
    let (scenarios, policies) = matrix();
    let reference = reference_json();
    let dir = tmp_spool("crash");
    std::fs::create_dir_all(&dir).expect("create spool root");
    // Exactly one worker (the first to claim after the marker appears)
    // exits 86 mid-unit, abandoning its claim; the parent must reap it,
    // requeue the unit, and respawn a replacement.
    let marker = dir.join("crash.marker");
    let mut opts = subprocess_opts(2);
    opts.worker_extra_args = vec!["--crash-once".to_string(), marker.display().to_string()];
    let outcome = orchestrate(&dir, &scenarios, &policies, &opts).expect("orchestrate survives");
    assert!(marker.exists(), "fault injection never fired");
    assert!(outcome.requeues >= 1, "crashed claim was never requeued");
    assert!(outcome.respawns >= 1, "dead worker was never replaced");
    assert_eq!(
        outcome.report.to_json(false),
        reference,
        "a worker crash changed the merged output"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unit_failing_every_attempt_is_poisoned_with_a_typed_error() {
    let (scenarios, policies) = matrix();
    let dir = tmp_spool("poison");
    // Every worker crashes the moment it claims tiny-rides, so the unit
    // burns its whole retry budget and lands in poison/; the other
    // units still complete.
    let mut opts = subprocess_opts(1);
    opts.max_attempts = 2;
    opts.worker_extra_args = vec!["--crash-on-unit".to_string(), "tiny-rides".to_string()];
    let err = orchestrate(&dir, &scenarios, &policies, &opts).expect_err("must poison");
    match err {
        OrchestrateError::Poisoned { units } => {
            assert_eq!(units.len(), 1, "{units:?}");
            assert!(units[0].contains("tiny-rides"), "{units:?}");
        }
        other => panic!("expected Poisoned, got {other}"),
    }
    // The healthy units' results are all present: the poison pill never
    // blocked the rest of the catalog.
    let results = std::fs::read_dir(dir.join("results"))
        .expect("results dir")
        .count();
    assert_eq!(results, scenarios.len() - 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_reuses_finished_results_without_recomputation() {
    let (scenarios, policies) = matrix();
    let reference = reference_json();
    let dir = tmp_spool("resume");
    let first = orchestrate(&dir, &scenarios, &policies, &subprocess_opts(2)).expect("first run");
    assert_eq!(first.report.to_json(false), reference);

    // A finished spool is never silently reused…
    let err = orchestrate(&dir, &scenarios, &policies, &subprocess_opts(2))
        .expect_err("reuse must be refused");
    assert!(matches!(err, OrchestrateError::SpoolExists { .. }), "{err}");

    // …and resuming it adopts every finished result untouched: same
    // merged bytes, zero requeues, and the result files' mtimes prove
    // nothing was rewritten.
    let mtime = |unit: &str| -> SystemTime {
        std::fs::metadata(dir.join("results").join(unit))
            .expect("result file")
            .modified()
            .expect("mtime")
    };
    let before: Vec<SystemTime> = (0..scenarios.len())
        .map(|i| mtime(&format!("{i:04}-{}.json", scenarios[i].name)))
        .collect();
    let mut opts = subprocess_opts(2);
    opts.resume = true;
    let second = orchestrate(&dir, &scenarios, &policies, &opts).expect("resume");
    assert_eq!(second.resumed, scenarios.len());
    assert_eq!(second.requeues, 0);
    assert_eq!(second.report.to_json(false), reference);
    let after: Vec<SystemTime> = (0..scenarios.len())
        .map(|i| mtime(&format!("{i:04}-{}.json", scenarios[i].name)))
        .collect();
    assert_eq!(before, after, "resume recomputed a finished unit");
    let _ = std::fs::remove_dir_all(&dir);
}
