//! End-to-end integration: trace → market → every solver → validation,
//! with the paper's dominance chain `algorithm ≤ Z* ≤ Z_f*` checked on one
//! instance family.

use rideshare::prelude::*;

fn build(seed: u64, tasks: usize, drivers: usize, model: DriverModel) -> Market {
    let trace = TraceConfig::porto()
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, model)
        .generate();
    Market::from_trace(&trace, &MarketBuildOptions::default())
}

#[test]
fn dominance_chain_on_small_instances() {
    for seed in [1u64, 2, 3] {
        let market = build(seed, 12, 4, DriverModel::Hitchhiking);

        let greedy = solve_greedy(&market, Objective::Profit);
        greedy.assignment.validate(&market).unwrap();
        let g = greedy
            .assignment
            .objective_value(&market, Objective::Profit)
            .as_f64();

        let exact = solve_exact(&market, Objective::Profit, ExactOptions::default()).unwrap();
        assert!(exact.proven_optimal, "seed {seed}");
        exact.assignment.validate(&market).unwrap();

        let ub = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default()).unwrap();
        assert!(ub.converged, "seed {seed}");

        assert!(
            g <= exact.objective_value + 1e-6,
            "seed {seed}: greedy {g} > Z* {}",
            exact.objective_value
        );
        assert!(
            exact.objective_value <= ub.bound + 1e-4,
            "seed {seed}: Z* {} > Z_f* {}",
            exact.objective_value,
            ub.bound
        );

        // Theorem 1: greedy ≥ OPT / (D+1).
        let d = market.chain_diameter() as f64;
        assert!(
            g + 1e-6 >= exact.objective_value / (d + 1.0),
            "seed {seed}: greedy {g} below 1/(D+1) of Z* {}",
            exact.objective_value
        );
    }
}

#[test]
fn online_heuristics_feasible_and_bounded() {
    let market = build(11, 150, 25, DriverModel::Hitchhiking);
    let bound = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default())
        .unwrap()
        .bound;
    let sim = Simulator::new(&market);
    for policy in [
        &mut MaxMargin::new() as &mut dyn DispatchPolicy,
        &mut NearestDriver::with_seed(1),
        &mut RandomDispatch::with_seed(1),
    ] {
        let r = sim.run(policy, SimulationOptions::default());
        validate_online(&market, &r.assignment).unwrap();
        assert!(
            r.total_profit(&market).as_f64() <= bound + 1e-6,
            "online profit exceeds Z_f*"
        );
    }
}

#[test]
fn greedy_dominates_online_in_profit() {
    // The offline algorithm sees all tasks in advance; across seeds it
    // should never lose to the online heuristics on total profit.
    for seed in [21u64, 22, 23] {
        let market = build(seed, 200, 30, DriverModel::Hitchhiking);
        let offline = solve_greedy(&market, Objective::Profit)
            .assignment
            .objective_value(&market, Objective::Profit)
            .as_f64();
        let sim = Simulator::new(&market);
        let online = sim
            .run(&mut MaxMargin::new(), SimulationOptions::default())
            .total_profit(&market)
            .as_f64();
        assert!(
            offline >= online - 1e-6,
            "seed {seed}: offline {offline} < online {online}"
        );
    }
}

#[test]
fn both_driver_models_run_cleanly() {
    for model in [DriverModel::Hitchhiking, DriverModel::HomeWorkHome] {
        let market = build(31, 100, 15, model);
        let greedy = solve_greedy(&market, Objective::Profit);
        greedy.assignment.validate(&market).unwrap();
        let sim = Simulator::new(&market);
        let r = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        validate_online(&market, &r.assignment).unwrap();
        let m = MarketMetrics::of(&market, &r.assignment);
        assert!(m.served_rate <= 1.0);
    }
}

#[test]
fn welfare_never_below_profit_for_same_assignment() {
    // bₘ ≥ pₘ pointwise, so any fixed assignment's welfare value dominates
    // its profit value.
    let market = build(41, 120, 20, DriverModel::Hitchhiking);
    let a = solve_greedy(&market, Objective::Profit).assignment;
    let p = a.objective_value(&market, Objective::Profit).as_f64();
    let w = a.objective_value(&market, Objective::Welfare).as_f64();
    assert!(w + 1e-9 >= p, "welfare {w} < profit {p}");
}

#[test]
fn facade_prelude_covers_the_pipeline() {
    // Everything used above came through `rideshare::prelude` — this test
    // exists to pin the prelude's surface.
    let market = build(51, 30, 5, DriverModel::Hitchhiking);
    let money: Money = market.tasks()[0].price;
    let _ = money + Money::new(1.0);
    let id: TaskId = market.tasks()[0].id;
    assert_eq!(id.index(), 0);
    let t: Timestamp = market.tasks()[0].publish_time;
    let _ = t + TimeDelta::from_secs(1);
    let d: DriverId = market.drivers()[0].id;
    assert_eq!(d.index(), 0);
}
