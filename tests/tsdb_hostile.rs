//! Hostile-input battery for the tsdb: every malformation a store can
//! meet on disk or in a query string is a *typed* error, never a panic.
//!
//! The store opens by structurally validating every chunk file the index
//! names, so corruption surfaces at [`TsdbStore::open`] — not as a
//! surprise mid-query. This suite feeds it: truncated chunk files,
//! corrupted file/chunk headers, forged counts and lengths, garbage and
//! overlong varints, trailing payload bytes, flipped payload bits,
//! malformed `index.json` in a dozen shapes, unknown label keys, and
//! overlapping/duplicate appends (including across a flush + reopen).
//! The companion proptests in `tests/tsdb_roundtrip.rs` cover the same
//! ground generatively; these are the deterministic, named corners.

use rideshare::tsdb::codec::{
    decode_file, file_header, fnv1a, ChunkFileDecoder, CodecError, Sample, CHUNK_HEADER_LEN,
    MAX_CHUNK_SAMPLES,
};
use rideshare::tsdb::store::{SeriesKey, CHUNK_LEN, MAX_SERIES};
use rideshare::tsdb::{LabelFilter, RangeQuery, TsdbError, TsdbStore};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsdb-hostile-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(metric: &str) -> SeriesKey {
    SeriesKey {
        scenario: "hostile".to_string(),
        policy: "margin".to_string(),
        region: "1".to_string(),
        shard: "1".to_string(),
        metric: metric.to_string(),
    }
}

/// A store with one sealed chunk on disk, flushed and closed.
fn sealed_store(tag: &str) -> (PathBuf, PathBuf) {
    let dir = tmp_dir(tag);
    let mut store = TsdbStore::open(&dir).expect("open");
    for k in 0..(CHUNK_LEN as i64 + 7) {
        store.append(&key("served"), k * 60, 3).expect("append");
    }
    store.flush().expect("flush");
    let file = dir.join("series-00000.tsc");
    assert!(file.exists(), "flush must have written the chunk file");
    (dir, file)
}

/// Builds a raw chunk (header + payload) with the *declared* count and a
/// correct checksum over `payload` — the forger's toolkit.
fn raw_chunk(count: u32, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&count.to_le_bytes());
    bytes.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("small payload")
            .to_le_bytes(),
    );
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

// ---------------------------------------------------------------------
// Corrupt chunk files: typed at open, named by path.
// ---------------------------------------------------------------------

#[test]
fn truncated_chunk_file_is_typed_at_open() {
    let (dir, file) = sealed_store("trunc");
    let bytes = std::fs::read(&file).expect("read");
    std::fs::write(&file, &bytes[..bytes.len() - 5]).expect("truncate");
    let err = TsdbStore::open(&dir).expect_err("truncated file must fail open");
    assert!(
        matches!(
            &err,
            TsdbError::Codec {
                error: CodecError::TruncatedChunk { .. },
                ..
            }
        ),
        "want Codec(TruncatedChunk), got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_mid_header_is_typed_at_open() {
    let (dir, file) = sealed_store("trunc-hdr");
    let bytes = std::fs::read(&file).expect("read");
    // Cut inside the chunk header (header starts right after the 8-byte
    // file header).
    std::fs::write(&file, &bytes[..8 + CHUNK_HEADER_LEN - 3]).expect("truncate");
    let err = TsdbStore::open(&dir).expect_err("truncated header must fail open");
    assert!(
        matches!(
            &err,
            TsdbError::Codec {
                error: CodecError::TruncatedHeader { .. },
                ..
            }
        ),
        "want Codec(TruncatedHeader), got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_magic_is_typed_at_open() {
    let (dir, file) = sealed_store("magic");
    let mut bytes = std::fs::read(&file).expect("read");
    bytes[0] = b'X';
    std::fs::write(&file, &bytes).expect("rewrite");
    let err = TsdbStore::open(&dir).expect_err("bad magic must fail open");
    assert!(
        matches!(
            &err,
            TsdbError::Codec {
                error: CodecError::BadMagic,
                ..
            }
        ),
        "want Codec(BadMagic), got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unsupported_version_is_typed_at_open() {
    let (dir, file) = sealed_store("version");
    let mut bytes = std::fs::read(&file).expect("read");
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&file, &bytes).expect("rewrite");
    let err = TsdbStore::open(&dir).expect_err("bad version must fail open");
    assert!(
        matches!(
            &err,
            TsdbError::Codec {
                error: CodecError::BadVersion(99),
                ..
            }
        ),
        "want Codec(BadVersion(99)), got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_payload_byte_is_a_checksum_mismatch() {
    let (dir, file) = sealed_store("flip");
    let mut bytes = std::fs::read(&file).expect("read");
    let payload_at = 8 + CHUNK_HEADER_LEN + 2;
    bytes[payload_at] ^= 0x40;
    std::fs::write(&file, &bytes).expect("rewrite");
    let err = TsdbStore::open(&dir).expect_err("bit rot must fail open");
    assert!(
        matches!(
            &err,
            TsdbError::Codec {
                error: CodecError::ChecksumMismatch { .. },
                ..
            }
        ),
        "want Codec(ChecksumMismatch), got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Forged headers and garbage varints (codec-level, no store needed).
// ---------------------------------------------------------------------

#[test]
fn forged_oversized_count_fails_before_payload_arrives() {
    let mut bytes = file_header().to_vec();
    bytes.extend_from_slice(&(MAX_CHUNK_SAMPLES + 1).to_le_bytes());
    bytes.extend_from_slice(&16u32.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    // Whole-buffer decode rejects on the header alone.
    assert!(matches!(
        decode_file(&bytes),
        Err(CodecError::OversizedChunk { .. })
    ));
    // The incremental decoder rejects as soon as the 12 header bytes are
    // in — it must NOT wait for (or buffer toward) the forged payload.
    let mut dec = ChunkFileDecoder::new();
    dec.feed(&bytes);
    assert!(matches!(dec.next(), Err(CodecError::OversizedChunk { .. })));
}

#[test]
fn zero_sample_chunk_is_refused() {
    let mut bytes = file_header().to_vec();
    bytes.extend_from_slice(&raw_chunk(0, &[]));
    assert!(matches!(decode_file(&bytes), Err(CodecError::EmptyChunk)));
}

#[test]
fn all_continuation_bytes_are_an_overlong_varint() {
    // 0xFF forever: every byte says "more follows", overrunning the u64
    // varint's 10-byte budget — garbage, typed.
    let mut bytes = file_header().to_vec();
    bytes.extend_from_slice(&raw_chunk(2, &[0xFF; 25]));
    assert!(matches!(
        decode_file(&bytes),
        Err(CodecError::OverlongVarint)
    ));
}

#[test]
fn varint_cut_mid_value_is_truncated() {
    // A valid continuation byte then nothing: the payload ends mid-varint.
    let mut bytes = file_header().to_vec();
    bytes.extend_from_slice(&raw_chunk(1, &[0x80]));
    assert!(matches!(
        decode_file(&bytes),
        Err(CodecError::TruncatedVarint)
    ));
}

#[test]
fn trailing_payload_bytes_are_refused() {
    // One declared sample, then extra bytes with a *correct* checksum:
    // still refused — the byte count must match the sample count.
    let mut payload = Vec::new();
    payload.extend_from_slice(&[0x00, 0x00]); // t0 = 0, v0 = 0
    payload.extend_from_slice(&[0x02, 0x02]); // an undeclared second sample
    let mut bytes = file_header().to_vec();
    bytes.extend_from_slice(&raw_chunk(1, &payload));
    assert!(matches!(
        decode_file(&bytes),
        Err(CodecError::TrailingBytes { extra: 2 })
    ));
}

#[test]
fn failed_incremental_decode_is_sticky_and_reproducible() {
    let mut bytes = file_header().to_vec();
    bytes.extend_from_slice(&raw_chunk(2, &[0xFF; 25]));
    let mut dec = ChunkFileDecoder::new();
    dec.feed(&bytes);
    let first = dec.next().expect_err("garbage varints");
    let pending = dec.pending_bytes();
    // The buffer is left untouched: same error, same pending tail, every
    // time — a caller can log and abort deterministically.
    let second = dec.next().expect_err("still garbage");
    assert_eq!(first, second);
    assert_eq!(dec.pending_bytes(), pending);
    assert!(!dec.at_clean_boundary());
}

// ---------------------------------------------------------------------
// Malformed index.json.
// ---------------------------------------------------------------------

fn open_with_index(tag: &str, index: &str) -> TsdbError {
    let dir = tmp_dir(tag);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("index.json"), index).expect("write index");
    let err = TsdbStore::open(&dir).expect_err("malformed index must fail open");
    let _ = std::fs::remove_dir_all(&dir);
    err
}

#[test]
fn malformed_index_shapes_are_typed() {
    // Not JSON at all.
    assert!(matches!(
        open_with_index("garbage", "not json"),
        TsdbError::BadIndex(_)
    ));
    // Wrong schema tag.
    assert!(matches!(
        open_with_index(
            "schema",
            "{\"schema\":\"rideshare-tsdb-index/999\",\"series\":[]}"
        ),
        TsdbError::BadIndex(_)
    ));
    // Missing the series array.
    assert!(matches!(
        open_with_index("noseries", "{\"schema\":\"rideshare-tsdb-index/1\"}"),
        TsdbError::BadIndex(_)
    ));
    // A series row with the wrong arity.
    assert!(matches!(
        open_with_index(
            "arity",
            "{\"schema\":\"rideshare-tsdb-index/1\",\"series\":[[0,\"s\",\"p\",\"r\",\"h\"]]}"
        ),
        TsdbError::BadIndex(_)
    ));
    // A non-numeric series id.
    assert!(matches!(
        open_with_index(
            "id",
            "{\"schema\":\"rideshare-tsdb-index/1\",\"series\":[[\"x\",\"s\",\"p\",\"r\",\"h\",\"m\"]]}"
        ),
        TsdbError::BadIndex(_)
    ));
    // A label value outside the charset contract.
    assert!(matches!(
        open_with_index(
            "charset",
            "{\"schema\":\"rideshare-tsdb-index/1\",\"series\":[[0,\"has space\",\"p\",\"r\",\"h\",\"m\"]]}"
        ),
        TsdbError::BadLabelValue { .. }
    ));
    // Two rows naming the same label set.
    assert!(matches!(
        open_with_index(
            "dup",
            "{\"schema\":\"rideshare-tsdb-index/1\",\"series\":[[0,\"s\",\"p\",\"r\",\"h\",\"m\"],[1,\"s\",\"p\",\"r\",\"h\",\"m\"]]}"
        ),
        TsdbError::BadIndex(_)
    ));
}

#[test]
fn series_count_past_the_cap_is_refused() {
    // Drive the store to MAX_SERIES distinct label sets (all buffered in
    // memory — nothing seals at one sample per series), then demand one
    // more: refused with the exact count. The same cap guards the index
    // load path, so a hostile `index.json` cannot force unbounded series
    // allocation either.
    let dir = tmp_dir("cap");
    let mut store = TsdbStore::open(&dir).expect("open");
    for i in 0..MAX_SERIES {
        let mut k = key("m");
        k.metric = format!("m{i}");
        store.append(&k, 0, 1).expect("append under the cap");
    }
    let mut over = key("m");
    over.metric = "straw".to_string();
    assert!(matches!(
        store.append(&over, 0, 1).expect_err("cap"),
        TsdbError::TooManySeries(n) if n == MAX_SERIES + 1
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Label and append contracts.
// ---------------------------------------------------------------------

#[test]
fn unknown_label_keys_and_bad_values_are_typed() {
    assert!(matches!(
        LabelFilter::parse("flavor=spicy").expect_err("unknown key"),
        TsdbError::UnknownLabelKey(k) if k == "flavor"
    ));
    assert!(matches!(
        LabelFilter::parse("metric").expect_err("missing ="),
        TsdbError::BadLabelValue { .. }
    ));
    assert!(matches!(
        LabelFilter::parse("metric=").expect_err("empty value"),
        TsdbError::BadLabelValue { .. }
    ));
    assert!(matches!(
        LabelFilter::parse("metric=has space").expect_err("charset"),
        TsdbError::BadLabelValue { .. }
    ));
    let long = format!("metric={}", "x".repeat(65));
    assert!(matches!(
        LabelFilter::parse(&long).expect_err("overlong"),
        TsdbError::BadLabelValue { .. }
    ));
    // Order-insensitive parse, canonical label-order rendering.
    let f = LabelFilter::parse("metric=served,policy=margin").expect("valid");
    assert_eq!(f.canonical(), "policy=margin,metric=served");
}

#[test]
fn overlapping_appends_are_refused_even_across_reopen() {
    let dir = tmp_dir("overlap");
    let mut store = TsdbStore::open(&dir).expect("open");
    store.append(&key("served"), 3_600, 5).expect("append");
    store.flush().expect("flush");
    drop(store);

    // The reopened store reconstructs each series' clock from disk, so
    // duplicate and backwards appends are refused across process lives.
    let mut store = TsdbStore::open(&dir).expect("reopen");
    assert!(matches!(
        store
            .append(&key("served"), 3_600, 5)
            .expect_err("duplicate"),
        TsdbError::OutOfOrder {
            prev: 3_600,
            at: 3_600,
            ..
        }
    ));
    assert!(matches!(
        store.append(&key("served"), 60, 1).expect_err("backwards"),
        TsdbError::OutOfOrder {
            prev: 3_600,
            at: 60,
            ..
        }
    ));
    // The refused appends left the series untouched.
    let samples = store.read_series(&key("served")).expect("read");
    assert_eq!(samples, vec![Sample { t: 3_600, v: 5 }]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_rejects_degenerate_ranges() {
    let dir = tmp_dir("range");
    let store = TsdbStore::open(&dir).expect("open");
    let bad_step = RangeQuery {
        filter: LabelFilter::any(),
        from: 0,
        to: 100,
        step: 0,
    };
    assert!(matches!(
        rideshare::tsdb::run_query(&store, &bad_step),
        Err(TsdbError::BadIndex(_))
    ));
    let inverted = RangeQuery {
        filter: LabelFilter::any(),
        from: 100,
        to: 0,
        step: 60,
    };
    assert!(matches!(
        rideshare::tsdb::run_query(&store, &inverted),
        Err(TsdbError::BadIndex(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
