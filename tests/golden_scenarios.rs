//! Golden regression tests: exact pinned results for small seeded
//! scenarios.
//!
//! Every number here was produced by the current implementation and is
//! pinned on purpose: any future optimisation that changes *results* (not
//! just speed) must fail these tests loudly and update the goldens in the
//! same commit, with the change called out in review. Determinism across
//! debug/release and thread counts is what makes exact pins possible.

use rideshare::prelude::*;

/// One pinned `(scenario, policy)` outcome.
struct Golden {
    scenario: &'static str,
    policy: PolicySpec,
    served: usize,
    /// Profit rounded to 4 decimals (the report's serialisation precision).
    profit: f64,
    /// Performance ratio vs `Z_f*`, rounded to 4 decimals. Online policies
    /// may legally exceed 1.0: early finishes relax the offline task map.
    ratio: f64,
}

const PROFIT_TOL: f64 = 5e-5;
const RATIO_TOL: f64 = 5e-5;

fn goldens() -> Vec<Golden> {
    vec![
        Golden {
            scenario: "tiny-rides",
            policy: PolicySpec::Greedy,
            served: 6,
            profit: 69.4154,
            ratio: 0.9210,
        },
        Golden {
            scenario: "tiny-rides",
            policy: PolicySpec::MaxMargin,
            served: 4,
            profit: 49.6007,
            ratio: 0.6581,
        },
        Golden {
            scenario: "tiny-delivery",
            policy: PolicySpec::Greedy,
            served: 18,
            profit: 806.7679,
            ratio: 0.9728,
        },
        Golden {
            scenario: "tiny-delivery",
            policy: PolicySpec::Nearest,
            served: 36,
            profit: 1091.0402,
            ratio: 1.3156,
        },
        Golden {
            scenario: "tiny-rush",
            policy: PolicySpec::Greedy,
            served: 5,
            profit: 28.5556,
            ratio: 1.0000,
        },
        Golden {
            scenario: "tightness-d4",
            policy: PolicySpec::Greedy,
            served: 4,
            profit: 1.0000,
            // Analytic: greedy earns 1, Z_f* = (D+1)(1−ε) = 4.75 → 1/4.75.
            ratio: 0.2105,
        },
        Golden {
            scenario: "tightness-d4",
            policy: PolicySpec::MaxMargin,
            served: 5,
            profit: 4.7500,
            ratio: 1.0000,
        },
    ]
}

#[test]
fn pinned_scenarios_reproduce_exactly() {
    let scenarios: Vec<Scenario> = Scenario::tiny_catalog();
    let policies = [
        PolicySpec::Greedy,
        PolicySpec::MaxMargin,
        PolicySpec::Nearest,
    ];
    let report = run_sweep(
        &scenarios,
        &policies,
        SweepOptions {
            threads: 1,
            compute_bound: true,
        },
    );
    for g in goldens() {
        let cell = report
            .cells
            .iter()
            .find(|c| c.scenario == g.scenario && c.policy == g.policy.label())
            .unwrap_or_else(|| panic!("missing cell {} × {}", g.scenario, g.policy.label()));
        assert_eq!(
            cell.served,
            g.served,
            "{} × {}: served drifted",
            g.scenario,
            g.policy.label()
        );
        assert!(
            (cell.profit - g.profit).abs() < PROFIT_TOL,
            "{} × {}: profit {} != pinned {}",
            g.scenario,
            g.policy.label(),
            cell.profit,
            g.profit
        );
        let ratio = cell.ratio.expect("bound requested");
        assert!(
            (ratio - g.ratio).abs() < RATIO_TOL,
            "{} × {}: ratio {} != pinned {}",
            g.scenario,
            g.policy.label(),
            ratio,
            g.ratio
        );
    }
}

#[test]
fn goldens_are_thread_count_invariant() {
    // The same matrix on 3 threads must reproduce the same pinned numbers
    // (sharding is result-neutral by construction).
    let scenarios = Scenario::tiny_catalog();
    let policies = [PolicySpec::Greedy];
    let seq = run_sweep(
        &scenarios,
        &policies,
        SweepOptions {
            threads: 1,
            compute_bound: true,
        },
    );
    let par = run_sweep(
        &scenarios,
        &policies,
        SweepOptions {
            threads: 3,
            compute_bound: true,
        },
    );
    assert_eq!(seq.to_json(false), par.to_json(false));
}

#[test]
fn tightness_family_ratio_is_analytic() {
    // The Fig. 2 family's pinned ratio is not an accident of seeds: it is
    // the theorem's 1/((D+1)(1−ε)), checked here from first principles.
    let inst = rideshare::core::tightness::fig2_instance(4, 0.05);
    let greedy = solve_greedy(&inst.market, Objective::Profit);
    let profit = greedy
        .assignment
        .objective_value(&inst.market, Objective::Profit)
        .as_f64();
    assert!((profit - inst.expected_greedy()).abs() < 1e-6);
    let ub = lp_upper_bound(
        &inst.market,
        Objective::Profit,
        UpperBoundOptions::default(),
    )
    .unwrap();
    assert!(
        (ub.bound - inst.expected_opt()).abs() < 1e-3,
        "Z_f* {} vs analytic optimum {}",
        ub.bound,
        inst.expected_opt()
    );
}
