//! The stream-vs-materialized oracle suite.
//!
//! The streaming replay engine's contract is that it is *not a different
//! dispatcher*: fed the same orders, it produces byte-identical
//! [`SimulationResult`]s to the materialized [`Simulator`] and
//! [`BatchEngine`] — same dispatch vector, same event list (arrival,
//! decision time, wait, deadhead, candidates, margin), same routes — and
//! every streamed result passes the dispatch-causality law
//! ([`validate_online_result`]). This file pins that on the **whole
//! scenario catalog** (instant and batched modes), plus:
//!
//! - the full lazy pipeline (`TraceConfig::stream` → [`StreamPricer`] →
//!   streaming engine) against materialising the same streamed trips into
//!   a [`Market`] and replaying them conventionally,
//! - a property test that reordering events *within one timestamp* cannot
//!   change anything (the engine decides same-instant groups in task-id
//!   order, so delivery jitter is invisible),
//! - `#[ignore]`d heavy runs: the porto-large batched matrix and a
//!   1,000,000-task bounded-memory replay
//!   (`cargo test --release --test stream_equivalence -- --ignored`).

use proptest::prelude::*;

use rideshare::bench::Scenario;
use rideshare::online::{GreedyPairMatcher, OptimalAssignmentMatcher, SimulationResult};
use rideshare::prelude::*;

/// Byte-identity between two results, field by field.
fn assert_same(streamed: &SimulationResult, materialized: &SimulationResult, ctx: &str) {
    assert_eq!(streamed.dispatch, materialized.dispatch, "{ctx}: dispatch");
    assert_eq!(streamed.events, materialized.events, "{ctx}: events");
    assert_eq!(streamed.served, materialized.served, "{ctx}: served");
    assert_eq!(streamed.rejected, materialized.rejected, "{ctx}: rejected");
    assert_eq!(
        streamed.assignment.routes(),
        materialized.assignment.routes(),
        "{ctx}: routes"
    );
}

fn stream_instant(market: &Market, policy: &mut dyn DispatchPolicy) -> SimulationResult {
    let mut sink = CollectingSink::new();
    let _ = replay_stream(
        market.speed(),
        market_events(market),
        &mut StreamPolicy::Instant(policy),
        StreamOptions::default(),
        &mut sink,
    );
    sink.into_result()
}

fn stream_batched(market: &Market, window: TimeDelta, optimal: bool) -> SimulationResult {
    let mut sink = CollectingSink::new();
    let mut greedy = GreedyPairMatcher;
    let mut opt = OptimalAssignmentMatcher;
    let matcher: &mut dyn BatchMatcher = if optimal { &mut opt } else { &mut greedy };
    let _ = replay_stream(
        market.speed(),
        market_events(market),
        &mut StreamPolicy::Batched { window, matcher },
        StreamOptions::default(),
        &mut sink,
    );
    sink.into_result()
}

/// Every catalog scenario, instant mode: streaming ≡ `Simulator`, for both
/// online heuristics, and the streamed result is causally valid.
#[test]
fn catalog_instant_streaming_oracle() {
    for scenario in Scenario::catalog() {
        let market = scenario.build_market();
        let sim = Simulator::new(&market);
        let streamed = stream_instant(&market, &mut MaxMargin::new());
        let materialized = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        assert_same(&streamed, &materialized, scenario.name);
        validate_online_result(&market, &streamed)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));

        for seed in [0u64, 3] {
            let streamed = stream_instant(&market, &mut NearestDriver::with_seed(seed));
            let materialized = sim.run(
                &mut NearestDriver::with_seed(seed),
                SimulationOptions::default(),
            );
            assert_same(&streamed, &materialized, scenario.name);
        }
    }
}

/// Every catalog scenario, batched mode (greedy matcher, 2-minute window):
/// streaming ≡ `BatchEngine`.
#[test]
fn catalog_batched_streaming_oracle() {
    for scenario in Scenario::catalog() {
        let market = scenario.build_market();
        let window = TimeDelta::from_mins(2);
        let streamed = stream_batched(&market, window, false);
        let materialized = run_batched(&market, window);
        assert_same(&streamed, &materialized, scenario.name);
        validate_online_result(&market, &streamed)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
    }
}

/// The tiny catalog under the full batched matrix (window × matcher),
/// optimal included.
#[test]
fn tiny_catalog_batched_matrix_oracle() {
    for scenario in Scenario::tiny_catalog() {
        let market = scenario.build_market();
        for mins in [0i64, 1, 5, 15] {
            for optimal in [false, true] {
                let window = TimeDelta::from_mins(mins);
                let streamed = stream_batched(&market, window, optimal);
                let kind = if optimal {
                    MatcherKind::Optimal
                } else {
                    MatcherKind::Greedy
                };
                let materialized =
                    run_batched_with(&market, BatchOptions::with_window(window).matcher(kind));
                assert_same(
                    &streamed,
                    &materialized,
                    &format!("{} W={mins}m optimal={optimal}", scenario.name),
                );
            }
        }
    }
}

/// The full lazy pipeline — streamed trips, streamed prices, streamed
/// dispatch — against materialising those same trips into a `Market` and
/// replaying conventionally. This is the end-to-end guarantee behind
/// `rideshare replay`: laziness changes memory, never results.
#[test]
fn lazy_pipeline_matches_materialized_pipeline() {
    let config = TraceConfig::porto()
        .with_seed(19)
        .with_task_count(400)
        .with_driver_count(30, DriverModel::Hitchhiking);
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };

    // Lazy: generate + price + dispatch one order at a time.
    let stream = config.stream();
    let speed = stream.speed();
    let mut pricer = StreamPricer::new(&build, stream.bounding_box(), speed, stream.drivers());
    let mut policy = MaxMargin::new();
    let mut spolicy = StreamPolicy::Instant(&mut policy);
    let mut sink = CollectingSink::new();
    let mut engine = StreamEngine::new(speed, StreamOptions::default().grid(stream.bounding_box()));
    for shift in stream.drivers() {
        engine.push(
            StreamEvent::DriverOnline(Driver::from(shift)),
            &mut spolicy,
            &mut sink,
        );
    }
    for trip in stream {
        engine.push(
            StreamEvent::TaskPublished(pricer.price(&trip)),
            &mut spolicy,
            &mut sink,
        );
    }
    let summary = engine.finish(&mut spolicy, &mut sink);
    let streamed = sink.into_result();

    // Materialized: the same streamed trips, built into a market.
    let market = Market::from_trace(&config.stream().collect_trace(), &build);
    let materialized =
        Simulator::new(&market).run(&mut MaxMargin::new(), SimulationOptions::default());

    assert_same(&streamed, &materialized, "lazy pipeline");
    validate_online_result(&market, &streamed).unwrap();
    assert_eq!(summary.tasks, market.num_tasks());
    assert!(summary.peak_held_tasks <= market.num_tasks() / 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Reordering task events *within the same publish timestamp* changes
    // nothing: the engine canonicalises same-instant groups by task id.
    // The demand profile is squeezed into two hours so timestamp ties are
    // plentiful.
    #[test]
    fn same_timestamp_reordering_is_invisible(
        seed in 0u64..10_000,
        tasks in 20usize..80,
        drivers in 1usize..10,
        rot in 1usize..5,
        batched in any::<bool>(),
    ) {
        let mut demand = [0.0f64; 24];
        demand[8] = 1.0;
        demand[9] = 1.0;
        let mut trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .with_hourly_demand(demand)
            .generate();
        // Floor publish times to 10-minute slots: ≥ 20 tasks over ~2 hours
        // of demand pigeonhole into equal timestamps, guaranteeing ties
        // (flooring only widens each task's window, so trips stay valid).
        for trip in &mut trace.trips {
            let floored = trip.publish_time.as_secs().div_euclid(600) * 600;
            trip.publish_time = Timestamp::from_secs(floored);
        }
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let events = market_events(&market);

        // Rotate every run of equal-publish task events by `rot`.
        let mut shuffled = events.clone();
        let mut i = 0usize;
        let mut any_tie = false;
        while i < shuffled.len() {
            let Some(at) = shuffled[i].timestamp() else { i += 1; continue };
            let mut j = i + 1;
            while j < shuffled.len() && shuffled[j].timestamp() == Some(at) {
                j += 1;
            }
            if j - i > 1 {
                any_tie = true;
                shuffled[i..j].rotate_left(rot % (j - i));
            }
            i = j;
        }

        let run = |events: Vec<StreamEvent>| {
            let mut sink = CollectingSink::new();
            let mut mm = MaxMargin::new();
            let mut greedy = GreedyPairMatcher;
            let mut policy = if batched {
                StreamPolicy::Batched { window: TimeDelta::from_mins(3), matcher: &mut greedy }
            } else {
                StreamPolicy::Instant(&mut mm)
            };
            let _ = replay_stream(
                market.speed(),
                events,
                &mut policy,
                StreamOptions::default(),
                &mut sink,
            );
            sink.into_result()
        };
        let a = run(events);
        let b = run(shuffled);
        prop_assert_eq!(&a.dispatch, &b.dispatch);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(a.served, b.served);
        // 20+ tasks in ~13 ten-minute slots: ties are guaranteed, so the
        // test always exercises real reordering.
        prop_assert!(any_tie, "no timestamp ties generated");
    }

    // Random traces, random windows: streamed batched replay stays
    // byte-identical to the materialized batch engine and causally valid.
    #[test]
    fn random_batched_streams_match_materialized(
        seed in 0u64..10_000,
        tasks in 1usize..60,
        drivers in 0usize..8,
        window_mins in 0i64..30,
        optimal in any::<bool>(),
    ) {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let window = TimeDelta::from_mins(window_mins);
        let streamed = stream_batched(&market, window, optimal);
        let kind = if optimal { MatcherKind::Optimal } else { MatcherKind::Greedy };
        let materialized = run_batched_with(&market, BatchOptions::with_window(window).matcher(kind));
        prop_assert_eq!(&streamed.dispatch, &materialized.dispatch);
        prop_assert_eq!(&streamed.events, &materialized.events);
        prop_assert!(validate_online_result(&market, &streamed).is_ok());
    }
}

/// The heavy preset under the optimal matcher — run with
/// `cargo test --release --test stream_equivalence -- --ignored`.
#[test]
#[ignore = "heavy: porto-large × optimal matcher, release only"]
fn porto_large_optimal_streaming_oracle() {
    let market = Scenario::by_name("porto-large").unwrap().build_market();
    for mins in [1i64, 5] {
        let window = TimeDelta::from_mins(mins);
        let streamed = stream_batched(&market, window, true);
        let materialized = run_batched_with(
            &market,
            BatchOptions::with_window(window).matcher(MatcherKind::Optimal),
        );
        assert_same(&streamed, &materialized, &format!("porto-large W={mins}m"));
    }
}

/// The acceptance-criterion run: one million synthetic Porto orders
/// through the full lazy pipeline in bounded memory. Release only.
#[test]
#[ignore = "heavy: 1M-task replay, release only"]
fn million_task_replay_stays_bounded() {
    let config = TraceConfig::porto()
        .with_seed(0)
        .with_task_count(1_000_000)
        .with_driver_count(450, DriverModel::Hitchhiking);
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
    let mut mm = MaxMargin::new();
    let mut policy = StreamPolicy::Instant(&mut mm);
    let mut metrics = StreamMetrics::hourly();
    let mut engine = StreamEngine::new(speed, StreamOptions::default().grid(bbox));
    for shift in stream.drivers() {
        engine.push(
            StreamEvent::DriverOnline(Driver::from(shift)),
            &mut policy,
            &mut metrics,
        );
    }
    let mut stream = config.stream();
    for trip in stream.by_ref() {
        engine.push(
            StreamEvent::TaskPublished(pricer.price(&trip)),
            &mut policy,
            &mut metrics,
        );
    }
    let summary = engine.finish(&mut policy, &mut metrics);
    assert_eq!(summary.tasks, 1_000_000);
    assert!(summary.served > 0);
    assert_eq!(metrics.published(), 1_000_000);
    // The bounded-memory claim, in numbers: held orders never approach the
    // trace; the trace generator's own buffer stays within a demand hour.
    assert!(
        summary.peak_held_tasks < 10_000,
        "peak held {}",
        summary.peak_held_tasks
    );
    assert!(
        stream.peak_buffered() < 200_000,
        "trace buffer {}",
        stream.peak_buffered()
    );
}
