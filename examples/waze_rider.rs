//! The Google Waze Rider market (§IV-C): commuters limited to two rides a
//! day — one to work, one from work — so each driver's task-map diameter is
//! `D = 1` per source-destination pair and GA guarantees a ½-approximation.
//!
//! This example builds a commuter market (hitchhiking drivers, short
//! morning-peak orders, a chain-wait cap so nobody strings rides together),
//! verifies the diameter claim, and compares GA to the exact optimum on a
//! small instance to exhibit the ½ bound in action.
//!
//! Run with: `cargo run --release --example waze_rider`

use rideshare::prelude::*;
use rideshare::trace::TruncatedPareto;

fn main() {
    // Morning-commute demand only: all orders in the 7–9am peak.
    let mut demand = [0.0f64; 24];
    demand[7] = 1.0;
    demand[8] = 1.0;
    let trace = TraceConfig::porto()
        .with_seed(99)
        .with_task_count(60)
        .with_driver_count(25, DriverModel::Hitchhiking)
        .with_hourly_demand(demand)
        // Commute-length rides: 3–15 km.
        .with_distance_distribution(TruncatedPareto::new(3.0, 15.0, 2.0))
        .generate();

    // Waze Rider policy: a driver cannot chain one ride into another —
    // enforce it with a zero-wait cap, which deletes every chain arc whose
    // idle gap exceeds zero (commute rides overlap in the peak anyway).
    let market = Market::from_trace(
        &trace,
        &MarketBuildOptions {
            max_chain_wait: Some(TimeDelta::from_secs(0)),
            ..Default::default()
        },
    );
    let d = market.chain_diameter();
    println!(
        "task-map diameter D = {d} → GA guarantees a {:.2}-approximation",
        1.0 / (d as f64 + 1.0)
    );

    let ga = solve_greedy(&market, Objective::Profit);
    ga.assignment.validate(&market).expect("feasible");
    let ga_profit = ga.assignment.objective_value(&market, Objective::Profit);

    let bound = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default())
        .expect("column generation converges");
    println!(
        "GA profit {:.2} vs Z_f* {:.2} → empirical ratio {:.3} (guarantee {:.3})",
        ga_profit.as_f64(),
        bound.bound,
        performance_ratio(ga_profit, bound.bound),
        1.0 / (d as f64 + 1.0),
    );

    // Exact comparison on a small slice of the same morning.
    let small_trace = TraceConfig::porto()
        .with_seed(99)
        .with_task_count(12)
        .with_driver_count(5, DriverModel::Hitchhiking)
        .with_hourly_demand(demand)
        .generate();
    let small = Market::from_trace(
        &small_trace,
        &MarketBuildOptions {
            max_chain_wait: Some(TimeDelta::from_secs(0)),
            ..Default::default()
        },
    );
    let exact = solve_exact(&small, Objective::Profit, ExactOptions::default())
        .expect("small instance is exactly solvable");
    let small_ga = solve_greedy(&small, Objective::Profit)
        .assignment
        .objective_value(&small, Objective::Profit);
    println!(
        "small instance: GA {:.2} vs Z* {:.2} (ratio {:.3}, never below 1/(D+1))",
        small_ga.as_f64(),
        exact.objective_value,
        small_ga.as_f64() / exact.objective_value.max(1e-9),
    );
}
