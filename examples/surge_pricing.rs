//! Surge pricing in action (§III-A, Eq. 15): how the Surge Multiplier
//! responds to local supply/demand imbalance and what it does to market
//! outcomes.
//!
//! Run with: `cargo run --release --example surge_pricing`

use rideshare::geo::{porto, GridIndex};
use rideshare::prelude::*;

fn main() {
    // A scarce evening: lots of demand, few drivers.
    let trace = TraceConfig::porto()
        .with_seed(18)
        .with_task_count(400)
        .with_driver_count(12, DriverModel::Hitchhiking)
        .generate();

    // Inspect the surge engine directly: count demand/supply per cell.
    let mut engine = SurgeEngine::new(SurgeConfig::uber_like());
    let grid: GridIndex<u32> = GridIndex::new(porto::bounding_box(), 12, 12);
    for t in &trace.trips {
        engine.add_demand(grid.cell_of(t.origin));
    }
    for d in &trace.drivers {
        engine.add_supply(grid.cell_of(d.source));
    }
    let downtown = grid.cell_of(porto::center());
    let airport = grid.cell_of(porto::airport());
    println!(
        "downtown cell: demand {} / supply {} → surge ×{:.2}",
        engine.demand(downtown),
        engine.supply(downtown),
        engine.multiplier(downtown)
    );
    println!(
        "airport  cell: demand {} / supply {} → surge ×{:.2}",
        engine.demand(airport),
        engine.supply(airport),
        engine.multiplier(airport)
    );

    // Market outcomes with and without surge.
    let mut rows = Vec::new();
    for (label, surge) in [
        ("surge on", SurgeConfig::uber_like()),
        ("surge off", SurgeConfig::disabled()),
    ] {
        let market = Market::from_trace(
            &trace,
            &MarketBuildOptions {
                surge,
                ..Default::default()
            },
        );
        let max_price = market
            .tasks()
            .iter()
            .map(|t| t.price.as_f64())
            .fold(f64::MIN, f64::max);
        let sim = Simulator::new(&market);
        let r = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", max_price),
            format!("{:.0}", r.assignment.total_revenue(&market).as_f64()),
            format!("{:.0}", r.total_profit(&market).as_f64()),
            format!("{:.0}%", r.service_rate() * 100.0),
        ]);
    }
    println!(
        "\n{}",
        render_table(
            &["pricing", "max fare", "revenue", "driver profit", "served"],
            &rows
        )
    );
    println!(
        "Surge raises fares exactly where supply is short, lifting driver\n\
         profit on the rides that do get served — the congestion-control\n\
         lever §VI-C credits Uber's mechanism with."
    );
}
