//! A full trace-driven day of the Porto taxi market (the paper's §VI
//! setting): full-time "home-work-home" taxis, surge pricing, and the
//! market-density analysis of Figs. 6–9 at three supply levels.
//!
//! Run with: `cargo run --release --example porto_day`

use rideshare::prelude::*;
use rideshare::trace::stats::{fit_power_law, summarize};

fn main() {
    // The real trace has 442 taxis; sweep a sparse, a medium, and a dense
    // market over the same 500-order day.
    for drivers in [30usize, 100, 250] {
        let trace = TraceConfig::porto()
            .with_seed(2013) // the trace year
            .with_task_count(500)
            .with_driver_count(drivers, DriverModel::HomeWorkHome)
            .generate();

        if drivers == 30 {
            // Fig. 3–4 style sanity check on the demand marginals.
            let mins: Vec<f64> = trace
                .trips
                .iter()
                .map(|t| t.duration.as_mins_f64())
                .collect();
            let kms: Vec<f64> = trace.trips.iter().map(|t| t.distance_km).collect();
            let t = summarize(&mins).expect("non-empty");
            let d = summarize(&kms).expect("non-empty");
            println!("demand: median trip {:.1} min / {:.1} km", t.p50, d.p50);
            if let Some(alpha) = fit_power_law(&kms, 1.0) {
                println!("distance tail exponent α̂ = {alpha:.2} (power law, cf. Fig. 4)\n");
            }
        }

        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let sim = Simulator::new(&market);
        let online = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        let offline = solve_greedy(&market, Objective::Profit);

        let m_on = MarketMetrics::of(&market, &online.assignment);
        let m_off = MarketMetrics::of(&market, &offline.assignment);
        println!("=== {drivers} taxis ===");
        println!(
            "{}",
            render_table(
                &[
                    "mode",
                    "revenue",
                    "profit",
                    "served",
                    "rev/worker",
                    "tasks/worker"
                ],
                &[
                    vec![
                        "online (maxMargin)".into(),
                        format!("{:.0}", m_on.total_revenue),
                        format!("{:.0}", m_on.total_profit),
                        format!("{:.0}%", m_on.served_rate * 100.0),
                        format!("{:.1}", m_on.avg_revenue_per_worker),
                        format!("{:.2}", m_on.avg_tasks_per_worker),
                    ],
                    vec![
                        "offline (Greedy)".into(),
                        format!("{:.0}", m_off.total_revenue),
                        format!("{:.0}", m_off.total_profit),
                        format!("{:.0}%", m_off.served_rate * 100.0),
                        format!("{:.1}", m_off.avg_revenue_per_worker),
                        format!("{:.2}", m_off.avg_tasks_per_worker),
                    ],
                ],
            )
        );
    }
    println!(
        "As §VI-C observes: denser markets serve more orders and earn more in\n\
         total, but each individual driver earns less — the congestion that\n\
         surge pricing and ride caps are designed to manage."
    );
}
