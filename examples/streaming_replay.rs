//! Streaming replay: the paper's Porto evaluation (§VI) at serving
//! scale — replay a large synthetic order stream through maxMargin
//! (Alg. 4) in **bounded memory**, with Figs. 6–9-style tables
//! accumulated off the stream instead of from a materialized result.
//!
//! Demonstrates the whole lazy pipeline: `TraceConfig::stream` (trips
//! generated in publish order, never sorted in bulk) → `StreamPricer`
//! (Eq. 15 fares with rolling-window surge, priced order by order) →
//! `StreamEngine` (the same dispatch semantics as `Simulator`, resident
//! state `O(held orders + drivers)`) → `StreamMetrics` (windowed
//! served/revenue/profit and per-driver income). The same run with ten
//! times the orders uses essentially the same memory — that is the
//! point.
//!
//! Run with: `cargo run --release --example streaming_replay`

use rideshare::prelude::*;

fn main() {
    // 1. Configure a big day: 50 000 orders, a 442-taxi fleet (the real
    //    Porto trace's size). Nothing is generated yet.
    let config = TraceConfig::porto()
        .with_seed(17)
        .with_task_count(50_000)
        .with_driver_count(442, DriverModel::HomeWorkHome);

    // 2. The lazy trace: drivers are known up front (a streaming
    //    dispatcher must know shifts before the orders they can serve),
    //    trips will arrive in publish order.
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    println!(
        "streaming {} orders to a {}-driver fleet (trace never materialised)",
        stream.task_count(),
        stream.drivers().len()
    );

    // 3. Incremental pricing: Eq. 15 fares under a 30-minute rolling
    //    surge window — the streamable surge mechanism (a whole-day
    //    static snapshot is unknowable online by construction).
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());

    // 4. Replay through maxMargin with grid-pruned candidates, windowed
    //    metrics as the sink.
    let mut policy = MaxMargin::new();
    let mut stream_policy = StreamPolicy::Instant(&mut policy);
    let mut metrics = StreamMetrics::hourly();
    let mut engine = StreamEngine::new(speed, StreamOptions::default().grid(bbox));
    for shift in stream.drivers() {
        engine.push(
            StreamEvent::DriverOnline(Driver::from(shift)),
            &mut stream_policy,
            &mut metrics,
        );
    }
    for trip in stream {
        let task = pricer.price(&trip);
        engine.push(
            StreamEvent::TaskPublished(task),
            &mut stream_policy,
            &mut metrics,
        );
    }
    let summary = engine.finish(&mut stream_policy, &mut metrics);

    // 5. The Figs. 6–9 quantities, straight off the stream.
    println!("\n{}", metrics.render());
    println!(
        "served {}/{} ({:.1}%), revenue {:.2}, profit {:.2}",
        summary.served,
        summary.tasks,
        metrics.service_rate() * 100.0,
        metrics.revenue(),
        metrics.profit(),
    );
    if let (Some(income), Some(tasks)) = (
        metrics.mean_income_per_active_driver(),
        metrics.mean_tasks_per_active_driver(),
    ) {
        println!(
            "{} active drivers, mean income {income:.2}, mean {tasks:.1} tasks/driver",
            metrics.active_drivers()
        );
    }

    // 6. The bounded-memory claim, in numbers.
    assert_eq!(summary.tasks, 50_000);
    assert!(
        summary.peak_resident() < 2_000,
        "resident state exploded: {}",
        summary.peak_resident()
    );
    println!(
        "peak resident state: {} held orders + {} drivers = {} entities — O(active + drivers), \
         not O(trace)",
        summary.peak_held_tasks,
        summary.drivers,
        summary.peak_resident()
    );
}
