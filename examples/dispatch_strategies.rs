//! Dispatch strategies side by side: instant heuristics (Algs. 3–4), the
//! batched extension, and the offline greedy — plus an hour-of-day view of
//! where the market is tight.
//!
//! Run with: `cargo run --release --example dispatch_strategies`

use rideshare::metrics::HourlyBreakdown;
use rideshare::online::{run_batched, run_batched_with, BatchOptions, MatcherKind};
use rideshare::prelude::*;

fn main() {
    let trace = TraceConfig::porto()
        .with_seed(23)
        .with_task_count(400)
        .with_driver_count(50, DriverModel::Hitchhiking)
        .generate();
    let market = Market::from_trace(&trace, &MarketBuildOptions::default());
    let sim = Simulator::new(&market);

    let mut rows = Vec::new();
    let mut hourly: Option<HourlyBreakdown> = None;

    // Instant policies.
    for (label, result) in [
        (
            "Nearest (Alg. 3)",
            sim.run(&mut NearestDriver::new(), SimulationOptions::default()),
        ),
        (
            "maxMargin (Alg. 4)",
            sim.run(&mut MaxMargin::new(), SimulationOptions::default()),
        ),
        (
            "batched 2 min",
            run_batched(&market, TimeDelta::from_mins(2)),
        ),
        (
            "batched 10 min",
            run_batched(&market, TimeDelta::from_mins(10)),
        ),
        (
            "batched 2 min, optimal",
            run_batched_with(
                &market,
                BatchOptions::with_window(TimeDelta::from_mins(2))
                    .matcher(MatcherKind::Optimal)
                    .grid(true),
            ),
        ),
    ] {
        // Feasibility *and* dispatch causality: departures never precede
        // the decisions that dispatched them.
        validate_online_result(&market, &result).expect("feasible and causal");
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", result.total_profit(&market).as_f64()),
            format!("{:.1}%", result.service_rate() * 100.0),
        ]);
        if label.starts_with("maxMargin") {
            hourly = Some(HourlyBreakdown::of(&market, &result));
        }
    }

    // Offline reference.
    let offline = solve_greedy(&market, Objective::Profit);
    rows.push(vec![
        "Greedy offline (Alg. 1)".into(),
        format!(
            "{:.2}",
            offline
                .assignment
                .objective_value(&market, Objective::Profit)
                .as_f64()
        ),
        format!(
            "{:.1}%",
            offline.assignment.served_count() as f64 / market.num_tasks() as f64 * 100.0
        ),
    ]);

    println!(
        "{}",
        render_table(&["strategy", "driver profit", "served"], &rows)
    );

    // Where is the market tight? (maxMargin run.)
    let hb = hourly.expect("maxMargin ran");
    println!("peak demand hour: {:02}:00", hb.peak_demand_hour());
    if let Some(tight) = hb.tightest_hour() {
        let b = hb.hour(tight);
        println!(
            "tightest hour:    {tight:02}:00 — {}/{} served ({:.0}%)",
            b.served,
            b.published,
            b.service_rate() * 100.0
        );
    }
    println!(
        "\nBatching trades a bounded dispatch delay for better matches. In a\n\
         dense market the batch matcher approaches the offline greedy; in a\n\
         sparse one (short candidate lists) the delay can cost more than the\n\
         smarter matching earns — the trade-off behind the paper's §VII call\n\
         for non-heuristic online algorithms."
    );
}
