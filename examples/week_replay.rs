//! Replaying a full week of the market, day by day — the per-day planning
//! loop the paper's model implies ("each driver reveals her travel plan …
//! everyday"), over the weekday/weekend demand cycle.
//!
//! Run with: `cargo run --release --example week_replay`

use rideshare::prelude::*;
use rideshare::trace::generate_days;

const DAY_NAMES: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

fn main() {
    let week = generate_days(
        &TraceConfig::porto()
            .with_seed(77)
            .with_task_count(250)
            .with_driver_count(35, DriverModel::HomeWorkHome),
        7,
    );

    let mut rows = Vec::new();
    let mut weekly_revenue = 0.0;
    let mut weekly_served = 0usize;
    let mut weekly_orders = 0usize;
    for (d, day) in week.days.iter().enumerate() {
        let market = Market::from_trace(day, &MarketBuildOptions::default());
        let sim = Simulator::new(&market);
        let result = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        validate_online(&market, &result.assignment).expect("feasible day");
        let m = MarketMetrics::of(&market, &result.assignment);
        weekly_revenue += m.total_revenue;
        weekly_served += m.served;
        weekly_orders += m.tasks;
        rows.push(vec![
            DAY_NAMES[d].to_string(),
            m.tasks.to_string(),
            format!("{:.0}%", m.served_rate * 100.0),
            format!("{:.0}", m.total_revenue),
            format!("{:.1}", m.avg_revenue_per_worker),
        ]);
    }
    println!(
        "{}",
        render_table(&["day", "orders", "served", "revenue", "rev/driver"], &rows)
    );
    println!(
        "week total: {weekly_orders} orders, {weekly_served} served, {weekly_revenue:.0} revenue"
    );
    println!(
        "\nSaturday carries ~25% more demand than a weekday and Sunday ~20%\n\
         less; with a fixed fleet, quiet Sunday is the best-served day of\n\
         the week while the Friday/Saturday peaks leave more riders behind\n\
         — the recurring imbalance surge pricing exists to price."
    );
}
