//! Quickstart: the paper's full workflow on one synthetic day — generate
//! a Porto market (§VI-A), solve it offline with GA (Alg. 1), replay it
//! online with maxMargin and Nearest (Algs. 3–4), and score everything
//! against the LP upper bound `Z_f*` (§III-E) — the miniature form of the
//! Fig. 5 performance-ratio comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use rideshare::prelude::*;

fn main() {
    // 1. Synthesise one day of the Porto market: 300 customer orders and
    //    40 hitchhiking drivers (commuters willing to take detours).
    let trace = TraceConfig::porto()
        .with_seed(7)
        .with_task_count(300)
        .with_driver_count(40, DriverModel::Hitchhiking)
        .generate();
    println!(
        "trace: {} trips, {} drivers, {:.0} km of demand",
        trace.trips.len(),
        trace.drivers.len(),
        trace.total_trip_km()
    );

    // 2. Build the market: surge prices (Eq. 15), valuations, task map.
    let market = Market::from_trace(&trace, &MarketBuildOptions::default());
    println!(
        "market: {} chain arcs in the shared task map, diameter D = {}",
        market.chain_arc_count(),
        market.chain_diameter()
    );

    // 3. Offline: the greedy GA (Alg. 1) with its 1/(D+1) guarantee.
    let offline = solve_greedy(&market, Objective::Profit);
    offline
        .assignment
        .validate(&market)
        .expect("GA is feasible");
    let offline_profit = offline
        .assignment
        .objective_value(&market, Objective::Profit);

    // 4. Online: replay the order stream through both heuristics.
    let sim = Simulator::new(&market);
    let mm = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
    let nearest = sim.run(&mut NearestDriver::new(), SimulationOptions::default());
    validate_online(&market, &mm.assignment).expect("online dispatch is feasible");

    // 5. The paper's yardstick: the LP-relaxation upper bound Z_f*.
    let bound = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default())
        .expect("column generation converges");

    println!(
        "\n{:<12} {:>10} {:>8} {:>8}",
        "algorithm", "profit", "ratio", "served"
    );
    for (name, profit, served) in [
        ("Greedy", offline_profit, offline.assignment.served_count()),
        ("maxMargin", mm.total_profit(&market), mm.served),
        ("Nearest", nearest.total_profit(&market), nearest.served),
    ] {
        println!(
            "{:<12} {:>10.2} {:>8.3} {:>8}",
            name,
            profit.as_f64(),
            performance_ratio(profit, bound.bound),
            served
        );
    }
    println!(
        "\nZ_f* = {:.2} ({} column-generation rounds, {} columns)",
        bound.bound, bound.rounds, bound.columns
    );
}
