//! Telemetry record + query: replay a small Porto day with the embedded
//! time-series store interposed, then query the store back and check it
//! against the in-memory accumulator **exactly**.
//!
//! Demonstrates the whole telemetry loop: [`TsdbRecorder`] wraps any
//! `StreamSink` (here `StreamMetrics`) and persists each closed window's
//! deltas — served / rejected / revenue / profit / wait / deadhead on
//! the exact i128 fixed-point grid — into lossless delta-of-delta
//! chunks under `{scenario, policy, region, shard, metric}` labels.
//! Because the stored integers are the *same* integers the accumulator
//! holds, a range query over the whole run reproduces the final metrics
//! with `==`, not "approximately": the store is telemetry you can trust
//! against the report it accompanies.
//!
//! The same store is what `rideshare replay --tsdb-dir DIR` writes and
//! `rideshare query --tsdb DIR` reads.
//!
//! Run with: `cargo run --release --example telemetry_query`

use rideshare::prelude::*;
use rideshare::tsdb::recorder::{METRIC_PROFIT, METRIC_SERVED, METRIC_WAIT_SECS};
use rideshare::tsdb::{to_canonical_json, Agg};

fn main() {
    // 1. A small day: 2 000 orders, 60 drivers, streamed lazily.
    let config = TraceConfig::porto()
        .with_seed(23)
        .with_task_count(2_000)
        .with_driver_count(60, DriverModel::Hitchhiking);
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());

    // 2. Open a store and interpose the recorder between the engine and
    //    the metrics accumulator. Every callback forwards unchanged; on
    //    each closed window the deltas persist.
    let dir = std::env::temp_dir().join(format!("telemetry-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TsdbStore::open(&dir).expect("open store");
    let labels = RunLabels::new("example", "margin", 1, 1);
    let mut sink = TsdbRecorder::new(store, labels, StreamMetrics::hourly());

    let mut policy = MaxMargin::new();
    let mut stream_policy = rideshare::online::StreamPolicy::Instant(&mut policy);
    let mut engine =
        rideshare::online::StreamEngine::new(speed, StreamOptions::default().grid(bbox));
    for shift in stream.drivers() {
        engine.push(
            StreamEvent::DriverOnline(Driver::from(shift)),
            &mut stream_policy,
            &mut sink,
        );
    }
    for trip in stream {
        let task = pricer.price(&trip);
        engine.push(
            StreamEvent::TaskPublished(task),
            &mut stream_policy,
            &mut sink,
        );
    }
    let summary = engine.finish(&mut stream_policy, &mut sink);
    let (store, metrics) = sink.finish().expect("flush store");
    let store = store.expect("store attached");
    println!(
        "recorded {} series to {} (served {}/{})",
        store.series().count(),
        store.dir().display(),
        summary.served,
        summary.tasks
    );

    // 3. Query the store back: hourly profit windows, then the total.
    let q = RangeQuery {
        filter: LabelFilter::parse("metric=profit").expect("filter"),
        from: i64::MIN,
        to: i64::MAX,
        step: 3600,
    };
    let result = run_query(&store, &q).expect("query");
    println!(
        "\nhourly profit windows:\n{}",
        rideshare::tsdb::query::render_table(&q, Agg::Sum, &result)
    );
    print!("canonical: {}", to_canonical_json(&q, Agg::Sum, &result));

    // 4. The contract, checked exactly: stored telemetry sums to the
    //    accumulator's raw integers — `==`, not a tolerance.
    let total_of = |metric: &str| {
        let q = RangeQuery {
            filter: LabelFilter::any().with("metric", metric).expect("filter"),
            from: i64::MIN,
            to: i64::MAX,
            step: 3600,
        };
        run_query(&store, &q)
            .expect("query")
            .total
            .map_or(0, |t| t.sum)
    };
    assert_eq!(
        total_of(METRIC_SERVED),
        i128::try_from(metrics.served()).expect("fits"),
        "stored served diverged from the accumulator"
    );
    assert_eq!(
        total_of(METRIC_PROFIT),
        metrics.profit_raw(),
        "stored profit diverged from the accumulator"
    );
    assert_eq!(
        total_of(METRIC_WAIT_SECS),
        i128::from(metrics.wait_secs_total()),
        "stored wait diverged from the accumulator"
    );
    println!(
        "\nquery ≡ accumulator: served {}, profit {:.2}, wait {}s — exact",
        metrics.served(),
        metrics.profit(),
        metrics.wait_secs_total()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
