//! The serve daemon: the paper's online market (§II, Alg. 4) run as a
//! **long-lived process** — orders arrive over a real TCP socket as
//! length-prefixed wire frames, dispatch decisions happen live, hourly
//! metrics snapshots fire at window boundaries, and the drained daemon is
//! proven **byte-identical** to an offline replay of the same trace.
//!
//! The workflow, end to end:
//!
//! 1. a producer thread prices one synthetic Porto day with the lazy
//!    pipeline (`TraceConfig::stream` → `StreamPricer`) and frames every
//!    event onto a loopback socket (`encode_frame`, u32-length-prefixed),
//! 2. `ServeDaemon` ingests from a [`TcpSource`], partitions 4 regions
//!    onto 2 shards, dispatches through maxMargin, and invokes the
//!    snapshot hook once per closed hour,
//! 3. the same trace replays in process through `replay_stream` — the
//!    oracle — and the run asserts exact `StreamMetrics` equality:
//!    ingestion is a transport, not a different dispatcher.
//!
//! Run with: `cargo run --release --example serve_daemon`

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};

use rideshare::online::{event_to_wire, ServeStop};
use rideshare::prelude::*;
use rideshare::trace::wire::{encode_frame, WireEvent};

fn main() {
    // 1. One synthetic day: 20 000 orders, 150 commuters, 4 regions (so a
    //    2-shard daemon has a legal region partition). Nothing runs yet.
    let config = TraceConfig::porto()
        .with_seed(18)
        .with_task_count(20_000)
        .with_driver_count(150, DriverModel::Hitchhiking)
        .with_regions(4);
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };

    // 2. The oracle: the same trace, priced and replayed entirely in
    //    process. This is what the daemon must reproduce exactly.
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let options = StreamOptions::default().grid(bbox);
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
    let mut events: Vec<StreamEvent> = stream
        .drivers()
        .iter()
        .map(|shift| StreamEvent::DriverOnline(Driver::from(shift)))
        .collect();
    for trip in stream {
        events.push(StreamEvent::TaskPublished(pricer.price(&trip)));
    }
    let mut mm = MaxMargin::new();
    let mut policy = StreamPolicy::Instant(&mut mm);
    let mut want = StreamMetrics::hourly();
    let mut engine = StreamEngine::new(speed, options);
    for event in events.iter().cloned() {
        engine.push(event, &mut policy, &mut want);
    }
    let want_summary = engine.finish(&mut policy, &mut want);
    println!(
        "oracle replay: served {}/{} ({:.1}%), revenue {:.2}",
        want_summary.served,
        want_summary.tasks,
        want.service_rate() * 100.0,
        want.revenue(),
    );

    // 3. The producer: frame every event (plus an end-of-stream marker)
    //    onto a loopback TCP connection, exactly as a remote feed would.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let feed = events.clone();
    let producer = std::thread::spawn(move || {
        let conn = TcpStream::connect(addr).expect("connect to daemon");
        let mut out = std::io::BufWriter::new(conn);
        for event in &feed {
            out.write_all(&encode_frame(&event_to_wire(event))).unwrap();
        }
        out.write_all(&encode_frame(&WireEvent::Eos)).unwrap();
        out.flush().unwrap();
    });

    // 4. The daemon: ingest from the socket, 4 regions on 2 shards,
    //    journalled metrics, an hourly snapshot hook. `MetricsJournal`
    //    keeps a cumulative accumulator that must equal the oracle's.
    let (conn, peer) = listener.accept().expect("accept producer");
    println!("daemon: ingesting from {peer}");
    let partitioner = BoxPartitioner::new(config.region_boxes());
    let daemon = ServeDaemon::new(
        SpeedModel::urban(),
        ShardPolicySpec::MaxMargin,
        ServeConfig::new(2)
            .shard_options(ShardOptions::new(2).stream(options).validate(false))
            .snapshot_every(TimeDelta::from_hours(1)),
    )
    .with_partitioner(&partitioner);
    let mut journal = MetricsJournal::hourly();
    let mut source = TcpSource::from_stream(conn);
    let mut snapshots: Vec<String> = Vec::new();
    let outcome = daemon.run(
        &mut source,
        &mut journal,
        |point, journal: &mut MetricsJournal| {
            // In `rideshare serve` this JSON goes to --snapshot-dir.
            let json = journal.cumulative().to_canonical_json();
            snapshots.push(format!(
                "snap {:02} @ {}s: {} bytes",
                point.seq,
                point.at.as_secs(),
                json.len()
            ));
        },
        |_, _| {},
    );
    producer.join().expect("producer thread");
    let report = outcome.into_result().expect("clean drain");

    // 5. The daemon's own operational report.
    println!(
        "daemon: served {}/{}, {} event(s), {} window(s), {} snapshot(s), stop: {:?}",
        report.summary.served,
        report.summary.tasks,
        report.events,
        report.windows,
        report.snapshots,
        report.stop,
    );
    for line in snapshots.iter().take(3) {
        println!("  {line}");
    }
    if snapshots.len() > 3 {
        println!("  … {} more", snapshots.len() - 3);
    }

    // 6. The equivalence pin: a drained daemon IS a replay. Exact metrics
    //    equality, down to the fixed-point revenue accumulators.
    assert_eq!(report.stop, ServeStop::Drained);
    assert_eq!(report.summary.tasks, want_summary.tasks);
    assert_eq!(report.summary.served, want_summary.served);
    assert_eq!(journal.cumulative(), &want, "daemon diverged from replay");
    println!(
        "equivalence: daemon metrics == replay metrics (exact), snapshot schema {}",
        rideshare::metrics::SNAPSHOT_SCHEMA
    );
}
