//! The product-delivery market (§I's second motivating domain: Google
//! Express / Amazon Prime Now) run through the same framework.
//!
//! Deliveries have long lead times and generous promised windows. That
//! changes *which* algorithm wins, in an instructive way: the offline
//! formulation chains tasks using the **promised** completion deadlines
//! `t̄⁺ₘ` (it must guarantee every promise), while the online simulator
//! applies the paper's early-finish rule — "when the task m finishes before
//! t̄⁺ₘ, we use the real finish time" (§III-B). With slack windows the real
//! finish is far earlier than the promise, so online dispatch legally
//! builds chains the deadline-based offline task map does not even contain.
//!
//! Run with: `cargo run --release --example delivery_market`

use rideshare::online::run_batched;
use rideshare::prelude::*;

fn main() {
    let couriers = 25;
    let orders = 300;

    let rides = TraceConfig::porto()
        .with_seed(5)
        .with_task_count(orders)
        .with_driver_count(couriers, DriverModel::HomeWorkHome)
        .generate();
    let deliveries = TraceConfig::porto_delivery()
        .with_seed(5)
        .with_task_count(orders)
        .with_driver_count(couriers, DriverModel::HomeWorkHome)
        .generate();

    let mut rows = Vec::new();
    for (label, trace) in [("ride-hailing", &rides), ("delivery", &deliveries)] {
        let market = Market::from_trace(trace, &MarketBuildOptions::default());
        let offline = solve_greedy(&market, Objective::Profit);
        offline.assignment.validate(&market).expect("feasible");
        let sim = Simulator::new(&market);
        let online = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        validate_online(&market, &online.assignment).expect("feasible online");
        let batched = run_batched(&market, TimeDelta::from_mins(20));

        let off = offline
            .assignment
            .objective_value(&market, Objective::Profit)
            .as_f64();
        let on = online.total_profit(&market).as_f64();
        let bat = batched.total_profit(&market).as_f64();
        let longest = offline
            .assignment
            .routes()
            .iter()
            .map(|r| r.tasks.len())
            .max()
            .unwrap_or(0);
        rows.push(vec![
            label.to_string(),
            market.chain_diameter().to_string(),
            longest.to_string(),
            format!("{off:.0}"),
            format!("{bat:.0}"),
            format!("{on:.0}"),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "market",
                "offline diameter D",
                "longest offline route",
                "offline profit",
                "batched 20m",
                "instant",
            ],
            &rows
        )
    );
    println!(
        "\nIn ride-hailing the tight windows make promised and real finish\n\
         times nearly equal, so the offline greedy's full-day knowledge wins\n\
         by a wide margin. In delivery the promise is ~4× the drive time:\n\
         the offline planner, which must honour every promised deadline when\n\
         chaining (Eq. 3 uses t̄⁺ₘ), becomes deeply conservative, while\n\
         online dispatch chains from *real* finish times and serves far\n\
         more. Closing that gap — offline planning over stochastic finish\n\
         times — is precisely the future work the paper's §VII points at."
    );
}
