//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this reproduction has no network access, so
//! the workspace vendors the *subset* of the `rand` 0.8 API that the
//! rideshare crates actually use: the [`Rng`] extension trait
//! ([`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]), the
//! [`SeedableRng`] constructor [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 generator of the real `StdRng` — so absolute random streams
//! differ from upstream `rand`, but all the properties the workspace
//! relies on hold: determinism for a fixed seed, uniformity in `[0, 1)`,
//! and exact-bound integer ranges via rejection sampling.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let d = rng.gen_range(10..20);
//! assert!((10..20).contains(&d));
//! // Same seed, same stream.
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(again.gen::<f64>(), u);
//! ```

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution of values of type `T`, sampled with uniform weight.
///
/// Only the "standard" distributions needed by [`Rng::gen`] are provided:
/// `f64` in `[0, 1)` and `bool` with probability `1/2`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, as upstream `rand` does for `f64`.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // `start + u * width` can round up to the excluded `end`
                // when u is within half an ulp of 1; redraw until it
                // lands inside (terminates fast: u < 0.5 always does).
                loop {
                    let u = <f64 as Standard>::sample(rng) as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <f64 as Standard>::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Uniform draw from `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // A full-width 64-bit range (span == 2^64) would truncate to 0 below;
    // every u64 is then a valid draw.
    if span > u128::from(u64::MAX) {
        return u128::from(rng.next_u64());
    }
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` this is *not* cryptographic;
    /// it exists to make traces and tests reproducible offline.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_both_halves() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let low = (0..n).filter(|_| rng.gen::<f64>() < 0.5).count();
        // A fair generator stays comfortably inside ±5σ ≈ ±250.
        assert!((n / 2 - 500..n / 2 + 500).contains(&low), "low={low}");
    }

    #[test]
    fn integer_ranges_hit_exact_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(10..15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 10..15 reachable");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn full_width_ranges_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(6);
        // span == 2^64: must not truncate to zero in the rejection zone.
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        let v = rng.gen_range(u64::MAX - 1..u64::MAX);
        assert_eq!(v, u64::MAX - 1);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = rng.gen_range(2.5f64..7.5);
            assert!((2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn float_range_never_returns_exclusive_end() {
        let mut rng = StdRng::seed_from_u64(8);
        // One-ulp-wide range: naive start + u*width rounds to `end` for
        // roughly half of all draws; the contract demands start only.
        let end = 1.0 + f64::EPSILON;
        for _ in 0..1_000 {
            assert_eq!(rng.gen_range(1.0f64..end), 1.0);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "hits={hits}");
    }
}
