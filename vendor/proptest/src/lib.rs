//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest 1.x API its test suite uses:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(…)]` header),
//! - range strategies (`0usize..8`, `-1e6f64..1e6`, `0u64..=9`),
//! - tuple strategies, [`collection::vec`], and [`strategy::any`],
//! - [`prop_oneof!`], [`strategy::Just`], and
//!   [`Strategy::prop_map`](strategy::Strategy::prop_map),
//! - [`prop_assert!`]/[`prop_assert_eq!`] and
//!   [`test_runner::ProptestConfig`].
//!
//! Each test case draws inputs from a deterministic generator seeded by
//! the test name and case index, so failures reproduce across runs.
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the inputs' case index instead of a minimised counterexample.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!     #[test]
//!     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
// The `proptest!` doc example necessarily contains `#[test]` tokens: they
// are part of the macro's input grammar, not a unit test to execute.
#![allow(clippy::test_attr_in_doctest)]

/// Strategies: composable recipes for generating random test inputs.
pub mod strategy {
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The RNG driving every strategy — re-exported so macro expansions
    /// (e.g. [`prop_oneof!`](crate::prop_oneof)) can name it through
    /// `$crate` without the consumer depending on `rand`.
    pub use rand::rngs::StdRng as StrategyRng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy producing one fixed value, like proptest's `Just`.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// One weighted arm of a [`Union`]: a weight and a boxed generator.
    pub type UnionArm<T> = (u32, Box<dyn Fn(&mut StdRng) -> T>);

    /// The weighted-choice strategy built by
    /// [`prop_oneof!`](crate::prop_oneof): each case draws one arm with
    /// probability proportional to its weight.
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union over `(weight, generator)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new(arms: Vec<UnionArm<T>>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "any value" strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u32>()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // The vendored rand only samples unsigned words; reinterpreting
            // the bits covers the full i64 range uniformly.
            rng.gen::<u64>() as i64
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`, e.g. `any::<bool>()`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The accepted length specifications for [`vec()`](fn@vec): an exact length,
    /// or a (half-open or inclusive) range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runner configuration and deterministic per-case seeding.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(…)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator for one test case, derived from the test
    /// name and the case index (FNV-1a over the name, mixed with the
    /// index) so every property sees an independent, reproducible stream.
    #[must_use]
    pub fn case_rng(test_name: &str, case: u64) -> StdRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// One-line import of everything a `proptest!` test needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Picks one of several strategies per generated value, optionally
/// weighted (`3 => strat_a, 1 => strat_b`); unweighted arms get weight 1.
/// All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let strat = $strat;
                (
                    $weight as u32,
                    Box::new(move |rng: &mut $crate::strategy::StrategyRng| {
                        $crate::strategy::Strategy::generate(&strat, rng)
                    }) as Box<dyn Fn(&mut $crate::strategy::StrategyRng) -> _>,
                )
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a property; panics with the standard
/// `assert!` message on failure (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that runs the body against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    (@impl ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_tuples_and_vecs_respect_bounds(
            n in 2usize..8,
            x in -1.5f64..1.5,
            pair in (0u64..10, any::<bool>()),
            xs in collection::vec(-5.0f64..5.0, 0..20),
            fixed in collection::vec(any::<bool>(), 8),
        ) {
            prop_assert!((2..8).contains(&n));
            prop_assert!((-1.5..1.5).contains(&x));
            prop_assert!(pair.0 < 10);
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(fixed.len(), 8);
            prop_assert!(xs.iter().all(|v| (-5.0..5.0).contains(v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn oneof_just_and_map_compose(
            v in prop_oneof![
                4 => (0i64..10).prop_map(|n: i64| -> i64 { n * 2 }),
                1 => Just(-7i64),
            ],
            flag in prop_oneof![Just(true), Just(false)],
        ) {
            // The union's value type is inferred from use, exactly like a
            // `-> impl Strategy<Value = …>` return annotation would pin it.
            let v: i64 = v;
            let _: bool = flag;
            prop_assert!(v == -7 || (0..20).contains(&v));
            prop_assert!(v == -7 || v % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0i64..=3) {
            prop_assert!((0..=3).contains(&v));
            prop_assert_ne!(v, 99);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
