//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the Criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! warm-up + fixed-duration loop that reports the mean wall-clock time
//! per iteration — adequate for relative comparisons, without Criterion's
//! statistical machinery or HTML reports.
//!
//! Like the real crate, running a bench binary with `--test` (which
//! `cargo test --benches` does) executes each benchmark body once and
//! skips measurement.
//!
//! ```
//! use criterion::{BenchmarkId, Criterion};
//!
//! let mut c = Criterion::test_mode();
//! c.bench_function("square", |b| b.iter(|| std::hint::black_box(3u64 * 3)));
//! let mut group = c.benchmark_group("sums");
//! for n in [10u64, 100] {
//!     group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
//!         b.iter(|| (0..n).sum::<u64>());
//!     });
//! }
//! group.finish();
//! ```

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], which upstream Criterion also
/// provides under this name.
pub use std::hint::black_box;

/// Entry point that registers and runs benchmarks.
pub struct Criterion {
    test_mode: bool,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--bench` to `harness = false` bench binaries only
        // under `cargo bench`; anything else (notably `cargo test
        // --benches`, which passes `--test` or nothing) smoke-executes
        // each body once without timing, as upstream Criterion does.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
        Criterion {
            test_mode,
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Creates a harness that always runs in test mode (single iteration,
    /// no timing). Used by doc tests and smoke tests.
    #[must_use]
    pub fn test_mode() -> Self {
        Criterion {
            test_mode: true,
            measure: Duration::ZERO,
        }
    }

    /// Benchmarks a single function under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.test_mode, self.measure, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            measure: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    // Per-group override; dropped with the group, as in real Criterion.
    measure: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed-duration loop has
    /// no per-group sample count to configure.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement duration for this group only.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = Some(d);
        self
    }

    fn measure(&self) -> Duration {
        self.measure.unwrap_or(self.criterion.measure)
    }

    /// Benchmarks `f` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.criterion.test_mode, self.measure(), &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&label, self.criterion.test_mode, self.measure(), &mut g);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, a parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id made of a parameter value alone (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted id types into a display label.
pub trait IntoBenchmarkId {
    /// The label printed for this benchmark.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to each benchmark body; [`Bencher::iter`] runs the measured
/// routine.
pub struct Bencher {
    mode: BencherMode,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

enum BencherMode {
    Test,
    Measure(Duration),
}

impl Bencher {
    /// Calls `routine` repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BencherMode::Test => {
                black_box(routine());
                self.iters = 1;
                self.mean_ns = 0.0;
            }
            BencherMode::Measure(budget) => {
                // Warm-up: one untimed call, also used to size batches.
                let warm = Instant::now();
                black_box(routine());
                let once = warm.elapsed().max(Duration::from_nanos(1));
                let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos())
                    .clamp(1, 10_000) as u64;
                let mut iters = 0u64;
                let start = Instant::now();
                while start.elapsed() < budget {
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    iters += batch;
                }
                let total = start.elapsed();
                self.iters = iters.max(1);
                self.mean_ns = total.as_nanos() as f64 / self.iters as f64;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, test_mode: bool, measure: Duration, f: &mut F) {
    let mut b = Bencher {
        mode: if test_mode {
            BencherMode::Test
        } else {
            BencherMode::Measure(measure)
        },
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok");
    } else {
        println!(
            "{label:<48} {:>12} /iter ({} iterations)",
            human_ns(b.mean_ns),
            b.iters
        );
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group: `criterion_group!(name, target, target, …)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion::test_mode();
        let mut calls = 0u32;
        c.bench_function("counted", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_labels_compose() {
        assert_eq!(BenchmarkId::new("f", 10).into_benchmark_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(42).into_benchmark_id(), "42");
    }

    #[test]
    fn measured_iter_reports_positive_mean() {
        let mut c = Criterion {
            test_mode: false,
            measure: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(1), &3u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        group.finish();
    }
}
